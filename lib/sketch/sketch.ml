(* Mergeable sketches. Everything here is deterministic: the hash
   family is fixed (seeded FNV-1a finished with the splitmix64 mixer),
   so two hosts that add the same items build bit-identical sketches —
   the property the tree-aggregation differential tests lean on. *)

(* ------------------------------ hashing -------------------------------- *)

let mix64 z =
  let z = Int64.logxor z (Int64.shift_right_logical z 30) in
  let z = Int64.mul z 0xbf58476d1ce4e5b9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  let z = Int64.mul z 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash64 ~seed s =
  let h = ref (Int64.logxor fnv_offset (mix64 (Int64.of_int seed))) in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  mix64 !h

(* A non-negative array index from a 64-bit hash. *)
let index_of h m = Int64.to_int h land max_int mod m

(* ----------------------------- structures ------------------------------ *)

type cm_t = {
  width : int;
  depth : int;
  rows : int array array;  (** depth x width *)
  mutable cm_n : int;
  eps : float;
  delta : float;
}

type tk_entry = { mutable cnt : int; mutable err : int }

type tk_t = {
  k : int;
  tbl : (string, tk_entry) Hashtbl.t;
  mutable tk_n : int;
  mutable evicted : bool;
      (** whether any counter was ever recycled: while false, every
          tracked count is exact and an absent item's count is zero *)
}

type hll_t = { p : int; regs : Bytes.t; mutable hll_n : int }

type t = Cm of cm_t | Topk of tk_t | Hll of hll_t

let max_cm_width = 1 lsl 20
let max_cm_depth = 64
let max_topk = 1 lsl 20

let cm ~eps ~delta =
  if not (Float.is_finite eps && eps > 0.0 && eps < 1.0) then
    invalid_arg "Sketch.cm: eps must be in (0, 1)";
  if not (Float.is_finite delta && delta > 0.0 && delta < 1.0) then
    invalid_arg "Sketch.cm: delta must be in (0, 1)";
  let width = min max_cm_width (max 1 (int_of_float (ceil (Float.exp 1.0 /. eps)))) in
  let depth = min max_cm_depth (max 1 (int_of_float (ceil (Float.log (1.0 /. delta))))) in
  Cm { width; depth; rows = Array.make_matrix depth width 0; cm_n = 0; eps; delta }

let topk ~k =
  if k < 1 || k > max_topk then invalid_arg "Sketch.topk: k out of range";
  Topk { k; tbl = Hashtbl.create (min k 64); tk_n = 0; evicted = false }

let hll ~precision =
  if precision < 4 || precision > 16 then
    invalid_arg "Sketch.hll: precision must be in [4, 16]";
  Hll { p = precision; regs = Bytes.make (1 lsl precision) '\000'; hll_n = 0 }

(* -------------------------------- add ---------------------------------- *)

let cm_add c item =
  c.cm_n <- c.cm_n + 1;
  for i = 0 to c.depth - 1 do
    let j = index_of (hash64 ~seed:(i + 1) item) c.width in
    c.rows.(i).(j) <- c.rows.(i).(j) + 1
  done

(* Space-saving: a full table recycles its smallest counter for the
   newcomer, remembering the stolen count as that item's error. The
   smallest counter is found by scan — [k] is small by design. *)
let tk_min t =
  Hashtbl.fold
    (fun item e acc ->
      match acc with
      | Some (_, best) when best.cnt <= e.cnt -> acc
      | _ -> Some (item, e))
    t.tbl None

let tk_add t item =
  t.tk_n <- t.tk_n + 1;
  match Hashtbl.find_opt t.tbl item with
  | Some e -> e.cnt <- e.cnt + 1
  | None ->
      if Hashtbl.length t.tbl < t.k then Hashtbl.replace t.tbl item { cnt = 1; err = 0 }
      else begin
        match tk_min t with
        | Some (victim, e) ->
            Hashtbl.remove t.tbl victim;
            t.evicted <- true;
            Hashtbl.replace t.tbl item { cnt = e.cnt + 1; err = e.cnt }
        | None -> Hashtbl.replace t.tbl item { cnt = 1; err = 0 }
      end

let leading_zeros64 x =
  if Int64.equal x 0L then 64
  else begin
    let n = ref 0 in
    let x = ref x in
    while Int64.compare (Int64.logand !x Int64.min_int) 0L = 0 do
      incr n;
      x := Int64.shift_left !x 1
    done;
    !n
  end

let hll_add h item =
  h.hll_n <- h.hll_n + 1;
  let hv = hash64 ~seed:0 item in
  let idx = Int64.to_int (Int64.shift_right_logical hv (64 - h.p)) in
  let rest = Int64.shift_left hv h.p in
  let rho = min (64 - h.p) (leading_zeros64 rest) + 1 in
  if rho > Char.code (Bytes.get h.regs idx) then Bytes.set h.regs idx (Char.chr rho)

let add t item =
  match t with Cm c -> cm_add c item | Topk k -> tk_add k item | Hll h -> hll_add h item

(* -------------------------------- copy --------------------------------- *)

let copy = function
  | Cm c -> Cm { c with rows = Array.map Array.copy c.rows }
  | Topk t ->
      let tbl = Hashtbl.create (Hashtbl.length t.tbl) in
      Hashtbl.iter (fun item e -> Hashtbl.replace tbl item { cnt = e.cnt; err = e.err }) t.tbl;
      Topk { t with tbl }
  | Hll h -> Hll { h with regs = Bytes.copy h.regs }

(* -------------------------------- merge -------------------------------- *)

(* Keep the k largest counters after a pointwise sum; ties break on the
   item string so the merge is exactly commutative. *)
let tk_shrink t =
  if Hashtbl.length t.tbl > t.k then begin
    let all = Hashtbl.fold (fun item e acc -> (item, e) :: acc) t.tbl [] in
    let sorted =
      List.sort
        (fun (ia, a) (ib, b) ->
          match compare b.cnt a.cnt with 0 -> String.compare ia ib | c -> c)
        all
    in
    List.iteri (fun i (item, _) -> if i >= t.k then Hashtbl.remove t.tbl item) sorted;
    t.evicted <- true
  end

let tk_merge_into dst src =
  (* An item absent from a summary has true count 0 if that summary
     never recycled a counter, and at most its minimum count otherwise
     (the classic space-saving bound). *)
  let floor_of t =
    if (not t.evicted) || Hashtbl.length t.tbl < t.k then 0
    else match tk_min t with Some (_, e) -> e.cnt | None -> 0
  in
  let dst_floor = floor_of dst in
  Hashtbl.iter
    (fun item (se : tk_entry) ->
      match Hashtbl.find_opt dst.tbl item with
      | Some de ->
          de.cnt <- de.cnt + se.cnt;
          de.err <- de.err + se.err
      | None ->
          Hashtbl.replace dst.tbl item
            { cnt = se.cnt + dst_floor; err = se.err + dst_floor })
    src.tbl;
  dst.tk_n <- dst.tk_n + src.tk_n;
  dst.evicted <- dst.evicted || src.evicted;
  tk_shrink dst

let merge_into dst src =
  match (dst, src) with
  | Cm d, Cm s ->
      if d.width <> s.width || d.depth <> s.depth then
        Error
          (Printf.sprintf "incompatible count-min sketches: %dx%d vs %dx%d" d.depth d.width
             s.depth s.width)
      else begin
        for i = 0 to d.depth - 1 do
          for j = 0 to d.width - 1 do
            d.rows.(i).(j) <- d.rows.(i).(j) + s.rows.(i).(j)
          done
        done;
        d.cm_n <- d.cm_n + s.cm_n;
        Ok ()
      end
  | Topk d, Topk s ->
      if d.k <> s.k then
        Error (Printf.sprintf "incompatible heavy-hitter sketches: k=%d vs k=%d" d.k s.k)
      else begin
        tk_merge_into d s;
        Ok ()
      end
  | Hll d, Hll s ->
      if d.p <> s.p then
        Error (Printf.sprintf "incompatible hll sketches: precision %d vs %d" d.p s.p)
      else begin
        for i = 0 to Bytes.length d.regs - 1 do
          if Bytes.get s.regs i > Bytes.get d.regs i then
            Bytes.set d.regs i (Bytes.get s.regs i)
        done;
        d.hll_n <- d.hll_n + s.hll_n;
        Ok ()
      end
  | _ ->
      let name = function Cm _ -> "cm" | Topk _ -> "topk" | Hll _ -> "hll" in
      Error (Printf.sprintf "cannot merge a %s sketch into a %s sketch" (name src) (name dst))

let merge a b =
  let c = copy a in
  match merge_into c b with Ok () -> Ok c | Error e -> Error e

let items_added = function Cm c -> c.cm_n | Topk t -> t.tk_n | Hll h -> h.hll_n

(* ------------------------------ estimates ------------------------------ *)

let cm_query t item =
  match t with
  | Cm c ->
      let est = ref max_int in
      for i = 0 to c.depth - 1 do
        let j = index_of (hash64 ~seed:(i + 1) item) c.width in
        if c.rows.(i).(j) < !est then est := c.rows.(i).(j)
      done;
      if !est = max_int then 0 else !est
  | Topk _ | Hll _ -> 0

let hll_alpha m =
  if m <= 16 then 0.673
  else if m <= 32 then 0.697
  else if m <= 64 then 0.709
  else 0.7213 /. (1.0 +. (1.079 /. float_of_int m))

let hll_estimate h =
  let m = 1 lsl h.p in
  let sum = ref 0.0 in
  let zeros = ref 0 in
  for i = 0 to m - 1 do
    let r = Char.code (Bytes.get h.regs i) in
    if r = 0 then incr zeros;
    sum := !sum +. (1.0 /. float_of_int (1 lsl r))
  done;
  let fm = float_of_int m in
  let raw = hll_alpha m *. fm *. fm /. !sum in
  let est =
    if raw <= 2.5 *. fm && !zeros > 0 then fm *. Float.log (fm /. float_of_int !zeros)
    else raw
  in
  int_of_float (Float.round est)

let estimate = function
  | Cm c -> c.cm_n
  | Topk t -> Hashtbl.length t.tbl
  | Hll h -> hll_estimate h

let top = function
  | Topk t ->
      let all = Hashtbl.fold (fun item e acc -> (item, e.cnt) :: acc) t.tbl [] in
      List.sort
        (fun (ia, ca) (ib, cb) ->
          match compare cb ca with 0 -> String.compare ia ib | c -> c)
        all
  | Cm _ | Hll _ -> []

let error_bound = function
  | Cm c -> c.eps *. float_of_int c.cm_n
  | Topk t -> float_of_int t.tk_n /. float_of_int (t.k + 1)
  | Hll h -> 1.04 /. Float.sqrt (float_of_int (1 lsl h.p))

(* -------------------------------- codec -------------------------------- *)

let codec_version = 1

let put_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let put_f64 buf f = Buffer.add_int64_be buf (Int64.bits_of_float f)

let encode t =
  let buf = Buffer.create 256 in
  Buffer.add_char buf (Char.chr codec_version);
  (match t with
  | Cm c ->
      Buffer.add_char buf '\000';
      put_varint buf c.width;
      put_varint buf c.depth;
      put_varint buf c.cm_n;
      put_f64 buf c.eps;
      put_f64 buf c.delta;
      Array.iter (fun row -> Array.iter (fun n -> put_varint buf n) row) c.rows
  | Topk t ->
      Buffer.add_char buf '\001';
      put_varint buf t.k;
      put_varint buf t.tk_n;
      Buffer.add_char buf (if t.evicted then '\001' else '\000');
      (* sorted for a canonical encoding: equal sketches encode equal *)
      let entries =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun item e acc -> (item, e) :: acc) t.tbl [])
      in
      put_varint buf (List.length entries);
      List.iter
        (fun (item, (e : tk_entry)) ->
          put_varint buf (String.length item);
          Buffer.add_string buf item;
          put_varint buf e.cnt;
          put_varint buf e.err)
        entries
  | Hll h ->
      Buffer.add_char buf '\002';
      put_varint buf h.p;
      put_varint buf h.hll_n;
      Buffer.add_bytes buf h.regs);
  Buffer.contents buf

exception Bad of string

type cursor = { s : string; mutable pos : int }

let need cur n =
  if cur.pos + n > String.length cur.s then raise (Bad "truncated sketch state")

let get_byte cur =
  need cur 1;
  let b = Char.code cur.s.[cur.pos] in
  cur.pos <- cur.pos + 1;
  b

let get_varint cur =
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift > 56 then raise (Bad "varint overflow");
    let b = get_byte cur in
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !n

let get_f64 cur =
  need cur 8;
  let v = Int64.float_of_bits (String.get_int64_be cur.s cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let get_str cur n =
  need cur n;
  let s = String.sub cur.s cur.pos n in
  cur.pos <- cur.pos + n;
  s

let decode s =
  let cur = { s; pos = 0 } in
  match
    let version = get_byte cur in
    if version <> codec_version then
      raise (Bad (Printf.sprintf "sketch codec version %d, expected %d" version codec_version));
    let t =
      match get_byte cur with
      | 0 ->
          let width = get_varint cur in
          let depth = get_varint cur in
          if width < 1 || width > max_cm_width || depth < 1 || depth > max_cm_depth then
            raise (Bad "count-min dimensions out of range");
          let n = get_varint cur in
          let eps = get_f64 cur in
          let delta = get_f64 cur in
          let rows =
            Array.init depth (fun _ -> Array.init width (fun _ -> get_varint cur))
          in
          Cm { width; depth; rows; cm_n = n; eps; delta }
      | 1 ->
          let k = get_varint cur in
          if k < 1 || k > max_topk then raise (Bad "heavy-hitter k out of range");
          let n = get_varint cur in
          let evicted = get_byte cur <> 0 in
          let count = get_varint cur in
          if count > k then raise (Bad "heavy-hitter summary larger than k");
          let tbl = Hashtbl.create (min count 64) in
          for _ = 1 to count do
            let len = get_varint cur in
            if len > 65536 then raise (Bad "heavy-hitter item too long");
            let item = get_str cur len in
            let cnt = get_varint cur in
            let err = get_varint cur in
            if Hashtbl.mem tbl item then raise (Bad "duplicate heavy-hitter item");
            Hashtbl.replace tbl item { cnt; err }
          done;
          Topk { k; tbl; tk_n = n; evicted }
      | 2 ->
          let p = get_varint cur in
          if p < 4 || p > 16 then raise (Bad "hll precision out of range");
          let n = get_varint cur in
          let regs = Bytes.of_string (get_str cur (1 lsl p)) in
          Bytes.iter
            (fun c -> if Char.code c > 64 then raise (Bad "hll register out of range"))
            regs;
          Hll { p; regs; hll_n = n }
      | k -> raise (Bad (Printf.sprintf "unknown sketch kind tag %d" k))
    in
    if cur.pos <> String.length s then raise (Bad "trailing bytes after sketch state");
    t
  with
  | t -> Ok t
  | exception Bad e -> Error e

let kind_name = function Cm _ -> "cm" | Topk _ -> "topk" | Hll _ -> "hll"

let pp fmt t =
  match t with
  | Cm c -> Format.fprintf fmt "cm(%dx%d, n=%d)" c.depth c.width c.cm_n
  | Topk t -> Format.fprintf fmt "topk(k=%d, tracked=%d, n=%d)" t.k (Hashtbl.length t.tbl) t.tk_n
  | Hll h -> Format.fprintf fmt "hll(p=%d, est=%d)" h.p (hll_estimate h)
