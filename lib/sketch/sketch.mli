(** Mergeable sketch summaries for distributed aggregation trees.

    Three classic structures — a count-min sketch, a space-saving
    (Misra-Gries) heavy-hitter summary, and a HyperLogLog-style distinct
    counter — sharing one interface: [add] an item, [merge] two
    summaries, [estimate] the answer. The merge is the load-bearing
    operation: it is commutative, and associative up to the structure's
    error bound (exactly associative for count-min and HLL; the
    heavy-hitter summary is exact while fewer than [k] distinct items
    have been seen), so partial sketches computed at the edge of an
    aggregation tree combine at every fan-in level into the same answer
    a single process would have produced.

    Items are byte strings; callers canonicalize their values first.
    Hashing is deterministic (seeded FNV-1a + splitmix64 finalizer), so
    the same item stream yields the same sketch on every host. *)

type t

(** {1 Construction} *)

val cm : eps:float -> delta:float -> t
(** Count-min sketch: frequency overestimates bounded by [eps * N]
    (N = total items added) with probability [1 - delta]. Width
    [ceil(e / eps)], depth [ceil(ln (1 / delta))]; both clamped to
    sane ranges. Raises [Invalid_argument] on non-finite or
    out-of-(0,1) parameters. *)

val topk : k:int -> t
(** Space-saving heavy-hitter summary holding at most [k] counters.
    Counts are exact while at most [k] distinct items are seen;
    afterwards each reported count overestimates by at most the
    per-item error bound tracked alongside it. Raises
    [Invalid_argument] when [k < 1] or absurdly large. *)

val hll : precision:int -> t
(** HyperLogLog distinct counter with [2 ^ precision] one-byte
    registers; relative error about [1.04 / sqrt (2 ^ precision)].
    [precision] must be in [4, 16]. *)

(** {1 The sketch algebra} *)

val add : t -> string -> unit
val copy : t -> t

val merge_into : t -> t -> (unit, string) result
(** [merge_into dst src] folds [src] into [dst]; [src] is not mutated.
    [Error] (and [dst] untouched) when the two sketches are of
    different kinds or incompatible dimensions — never an exception,
    because merged states arrive over the network. *)

val merge : t -> t -> (t, string) result
(** Pure variant of {!merge_into}: neither argument is mutated. *)

val items_added : t -> int
(** Total number of [add]s folded in (summed across merges). *)

(** {1 Estimates} *)

val estimate : t -> int
(** The sketch's headline answer: distinct count for {!hll}, total
    items for {!cm}, number of tracked counters for {!topk}. *)

val cm_query : t -> string -> int
(** Estimated frequency of one item (count-min only; 0 otherwise). *)

val top : t -> (string * int) list
(** Tracked heavy hitters, highest count first (ties broken by item,
    so the listing is deterministic); [[]] for non-topk sketches. *)

val error_bound : t -> float
(** The structure's additive/relative error promise: [eps * N] for
    count-min, [N / (k + 1)] for space-saving (as a count), and the
    relative error [1.04 / sqrt m] for HLL. *)

(** {1 Versioned binary codec} *)

val codec_version : int

val encode : t -> string

val decode : string -> (t, string) result
(** Total: truncated, corrupt, oversized or version-mismatched bytes
    come back as [Error], never an exception. [decode (encode t)]
    reconstructs [t] exactly. *)

val kind_name : t -> string
(** ["cm"], ["topk"] or ["hll"] — for metrics and error messages. *)

val pp : Format.formatter -> t -> unit
