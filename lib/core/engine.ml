module Rts = Gigascope_rts
module Gsql = Gigascope_gsql
module Bpf = Gigascope_bpf
module Nic = Gigascope_nic.Nic
module Traffic = Gigascope_traffic
module P = Gigascope_packet
module Packet = P.Packet
module Value = Rts.Value
module Metrics = Gigascope_obs.Metrics

let log_src = Logs.Src.create "gigascope.engine" ~doc:"Gigascope engine lifecycle events"

module Log = (val Logs.src_log log_src : Logs.LOG)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

type nic_capability = Cap_none | Cap_bpf | Cap_lfta

type iface = {
  feed_factory : unit -> unit -> Packet.t option;
  nic : Nic.t;
  capability : nic_capability;
  mutable nic_configured : bool;
}

(* Admission control: what happens when a plan's memory certification
   comes back unbounded. The library default is [Admit_warn] — the
   epoch-less flush-driven aggregation of Section 2.2 is a legitimate
   (if unbounded) embedded use; servers admitting arbitrary GSQL
   tighten to [Admit_reject]. *)
type admit = Admit_allow | Admit_warn | Admit_reject

type t = {
  mgr : Rts.Manager.t;
  catalog : Gsql.Catalog.t;
  interfaces : (string, iface) Hashtbl.t;
  mutable next_seed : int;
  shards : int;
  default_capacity : int;
  admit : admit;
  mutable shard_infos : Gsql.Split.shard_info list;
  mutable shard_notes : (string * string) list;
      (** queries that could not shard, with the splitter's reason *)
  mutable certs : (string * Gsql.Certify.t) list;
      (** memory certificates of installed queries, in install order *)
}

(* GIGASCOPE_PARALLEL / GIGASCOPE_BATCH / GIGASCOPE_SHARDS make every
   run parallel / batched / sharded by default — the hooks the CI
   matrix uses to execute the whole test suite on N domains, vectorized,
   or data-parallel. A value that is not a clean positive integer is
   ignored, but never silently: degrading GIGASCOPE_PARALLEL=abc to a
   single-threaded run would quietly void what the CI matrix claims to
   test. *)
let env_knob name =
  match Sys.getenv_opt name with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some n ->
          Log.warn (fun m -> m "ignoring %s=%d: must be a positive integer; using 1" name n);
          1
      | None ->
          Log.warn (fun m -> m "ignoring %s=%S: not an integer; using 1" name s);
          1)

(* Sharding rewrites the plan at install time, so its knob is read in
   [create], not [run]. *)
let default_shards () = env_knob "GIGASCOPE_SHARDS"

let admit_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "allow" -> Ok Admit_allow
  | "warn" -> Ok Admit_warn
  | "reject" -> Ok Admit_reject
  | _ -> Error (Printf.sprintf "unknown admission mode %S (allow|warn|reject)" s)

let admit_to_string = function
  | Admit_allow -> "allow"
  | Admit_warn -> "warn"
  | Admit_reject -> "reject"

(* GIGASCOPE_ADMIT: same warn-and-default stance as the other knobs. *)
let default_admit () =
  match Sys.getenv_opt "GIGASCOPE_ADMIT" with
  | None | Some "" -> Admit_warn
  | Some s -> (
      match admit_of_string s with
      | Ok a -> a
      | Error e ->
          Log.warn (fun m -> m "ignoring GIGASCOPE_ADMIT: %s; using warn" e);
          Admit_warn)

let create ?(default_capacity = 4096) ?shards ?admit () =
  let mgr = Rts.Manager.create ~default_capacity () in
  let catalog = Gsql.Catalog.create (Rts.Manager.functions mgr) in
  Default_protocols.register catalog;
  let shards = match shards with Some n -> max 1 n | None -> default_shards () in
  let admit = match admit with Some a -> a | None -> default_admit () in
  {
    mgr;
    catalog;
    interfaces = Hashtbl.create 8;
    next_seed = 0x517;
    shards;
    default_capacity;
    admit;
    shard_infos = [];
    shard_notes = [];
    certs = [];
  }

let shards t = t.shards

let manager t = t.mgr
let catalog t = t.catalog
let metrics t = Rts.Manager.metrics t.mgr
let metrics_snapshot t = Metrics.snapshot (Rts.Manager.metrics t.mgr)

let register_function t f = Rts.Func.register (Rts.Manager.functions t.mgr) f

let add_interface t ~name ?(capability = Cap_none) ~feed () =
  Log.debug (fun m -> m "interface %s added" name);
  Hashtbl.replace t.interfaces (String.lowercase_ascii name)
    { feed_factory = feed; nic = Nic.create (); capability; nic_configured = false }

let add_packet_list_interface t ~name ?capability packets =
  add_interface t ~name ?capability ~feed:(fun () ->
      let remaining = ref packets in
      fun () ->
        match !remaining with
        | [] -> None
        | p :: rest ->
            remaining := rest;
            Some p)
    ()

let add_generator_interface t ~name ?capability cfg =
  add_interface t ~name ?capability ~feed:(fun () ->
      let gen = Traffic.Gen.create cfg in
      fun () -> Traffic.Gen.next gen)
    ()

let add_split_interfaces t ~names ?capability cfg =
  List.iteri
    (fun k name ->
      add_interface t ~name ?capability ~feed:(fun () ->
          let gen = Traffic.Gen.create cfg in
          let rec pull () =
            match Traffic.Gen.next_with_interface gen with
            | None -> None
            | Some (pkt, iface) -> if iface = k then Some pkt else pull ()
          in
          pull)
        ())
    names

let add_pcap_interface t ~name ?capability path =
  match P.Pcap.read_file path with
  | Error _ as e -> e
  | Ok (_, records) ->
      let packets =
        List.filter_map
          (fun (r : P.Pcap.record) ->
            match Packet.decode ~ts:r.P.Pcap.ts ~wire_len:r.P.Pcap.orig_len r.P.Pcap.data with
            | Ok pkt -> Some pkt
            | Error _ -> None)
          records
      in
      add_packet_list_interface t ~name ?capability packets;
      Ok ()

let add_defrag_interface t ~name ?capability ?reassembly_timeout ~feed () =
  add_interface t ~name ?capability ~feed:(fun () ->
      let inner = feed () in
      let reasm = P.Frag.create_reassembler ?timeout:reassembly_timeout () in
      let rec pull () =
        match inner () with
        | None -> None
        | Some pkt -> (
            match P.Frag.push reasm pkt with
            | Some whole -> Some whole
            | None -> pull () (* partial datagram: keep reading *))
      in
      pull)
    ()

let add_custom_source t ~name ~schema ~pull ~clock =
  let* _node = Rts.Manager.add_source t.mgr ~name ~schema { Rts.Node.pull; clock } in
  Gsql.Catalog.add_stream t.catalog ~name schema;
  Ok ()

let add_session_source t ~name ?idle_timeout ~feed () =
  let pull, clock = Sessions.source ?idle_timeout feed in
  add_custom_source t ~name ~schema:Sessions.schema ~pull ~clock

let nic_of t name =
  Option.map (fun i -> i.nic) (Hashtbl.find_opt t.interfaces (String.lowercase_ascii name))

(* ---------------- source binding --------------------------------------- *)

let configure_nic iface (hint : Gsql.Split.nic_hint option) =
  let desired =
    match (iface.capability, hint) with
    | Cap_none, _ | _, None -> Nic.Dumb
    | Cap_bpf, Some { Gsql.Split.nic_filter; snap_len } ->
        Nic.Filtering
          {
            prog = Option.map (fun f -> Bpf.Filter.compile ~snap_len f) nic_filter;
            snap_len;
          }
    | Cap_lfta, Some { Gsql.Split.nic_filter; snap_len } ->
        Nic.Programmable
          {
            prog = Option.map (fun f -> Bpf.Filter.compile ~snap_len f) nic_filter;
            snap_len;
          }
  in
  if iface.nic_configured then Nic.widen iface.nic desired
  else begin
    Nic.set_mode iface.nic desired;
    iface.nic_configured <- true
  end

let bind_source t ~interface ~protocol ~nic =
  let source_name = interface ^ "." ^ protocol in
  match Rts.Manager.find t.mgr source_name with
  | Some _ ->
      (match Hashtbl.find_opt t.interfaces (String.lowercase_ascii interface) with
      | Some iface -> configure_nic iface nic
      | None -> ());
      Ok source_name
  | None -> (
      match
        ( Hashtbl.find_opt t.interfaces (String.lowercase_ascii interface),
          Default_protocols.find protocol )
      with
      | None, _ -> err "unknown interface %s" interface
      | _, None -> err "no interpretation library for protocol %s" protocol
      | Some iface, Some proto ->
          configure_nic iface nic;
          let feed = iface.feed_factory () in
          let last_ts = ref nan in
          let needs_nic_path () = Nic.mode iface.nic <> Nic.Dumb in
          let rec pull () =
            match feed () with
            | None -> None
            | Some pkt -> (
                last_ts := pkt.Packet.ts;
                let delivered =
                  if needs_nic_path () then begin
                    let wire = Packet.encode pkt in
                    match Nic.deliver iface.nic wire with
                    | None -> None
                    | Some snapped -> (
                        match
                          Packet.decode ~ts:pkt.Packet.ts ~wire_len:(Bytes.length wire) snapped
                        with
                        | Ok p -> Some p
                        | Error _ -> None)
                  end
                  else begin
                    (* account the dumb card's view too *)
                    ignore (Nic.deliver iface.nic (Packet.encode pkt));
                    Some pkt
                  end
                in
                match delivered with
                | None -> pull ()
                | Some p -> (
                    match proto.Default_protocols.interpret p with
                    | Some tuple -> Some (Rts.Item.Tuple tuple)
                    | None -> pull ()))
          in
          let clock () =
            if Float.is_nan !last_ts then []
            else
              List.map
                (fun (idx, f) -> (idx, f !last_ts))
                proto.Default_protocols.clock_fields
          in
          let* _node =
            Rts.Manager.add_source t.mgr ~name:source_name
              ~schema:proto.Default_protocols.catalog_entry.Gsql.Catalog.schema
              { Rts.Node.pull; clock }
          in
          Ok source_name)

let binder t = { Gsql.Codegen.bind_source = (fun ~interface ~protocol ~nic -> bind_source t ~interface ~protocol ~nic) }

(* ---------------- program installation --------------------------------- *)

let fresh_seed t =
  t.next_seed <- t.next_seed + 0x9e37;
  t.next_seed

(* Per-shard acceptance counters, an aggregate skew gauge
   (max_shard * n / total: 1.0 = perfectly even, n = everything on one
   shard), and the reunification merge's buffering/reorder-lag metrics,
   all under the rts.shard.<query> prefix. *)
let register_shard_metrics t (inst : Gsql.Codegen.instance) (info : Gsql.Split.shard_info) =
  let m = metrics t in
  let q = info.Gsql.Split.squery in
  Array.iteri
    (fun i c -> Metrics.attach_counter m (Printf.sprintf "rts.shard.%s.%d.tuples" q i) c)
    info.Gsql.Split.stuples;
  Metrics.attach_gauge_fn m (Printf.sprintf "rts.shard.%s.skew" q) (fun () ->
      let counts = Array.map Metrics.Counter.get info.Gsql.Split.stuples in
      let total = Array.fold_left ( + ) 0 counts in
      if total = 0 then 0.0
      else
        let hi = Array.fold_left max 0 counts in
        float_of_int (hi * Array.length counts) /. float_of_int total);
  match List.assoc_opt info.Gsql.Split.sreunify inst.Gsql.Codegen.merges with
  | Some merge ->
      Rts.Merge_op.register_metrics merge m ~prefix:(Printf.sprintf "rts.shard.%s.reunify" q)
  | None -> ()

(* A stream feeding a node is either another node of the same split or
   an already-installed query (composition by name); its certified
   single-step burst sizes the channel between them. *)
let upstream_burst t cert stream =
  let b = Gsql.Certify.burst cert stream in
  if b > 1 then b
  else List.fold_left (fun acc (_, c) -> max acc (Gsql.Certify.burst c stream)) b t.certs

(* Room above the certified burst for control items and a straggler
   batch — sizing exactly at the burst would drop the tuple that rides
   in with the sealing punctuation. *)
let burst_headroom = 64

(* Install one split result, shard-rewriting it first when the engine
   was created with [shards > 1]. A plan the splitter cannot shard
   installs unchanged and the reason is kept for [trace_report] — the
   same never-silent stance as the env knobs.

   Installation is also the admission gate: the (post-shard) physical
   plan is certified, an unbounded verdict is warned about or rejected
   per the engine's admission mode, channels are auto-sized from the
   certified bursts, and each node gets its certified state bound for
   the [rts.state.*] gauges and the watchdog. *)
let install_split t ?params split =
  let install s =
    let cert = Gsql.Certify.certify s in
    let* () =
      match (Gsql.Certify.finite cert, t.admit) with
      | true, _ | false, Admit_allow -> Ok ()
      | false, Admit_warn ->
          List.iter
            (fun u ->
              Log.warn (fun m ->
                  m "query %s admitted without a memory bound: %s"
                    cert.Gsql.Certify.cquery (Gsql.Certify.diagnostic u)))
            (Gsql.Certify.unbounded_nodes cert);
          Ok ()
      | false, Admit_reject ->
          let diag =
            match Gsql.Certify.unbounded_nodes cert with
            | u :: _ -> Gsql.Certify.diagnostic u
            | [] -> "no finite bound"
          in
          err "query %s rejected: %s (install with --allow-unbounded / admit=warn to run it \
               anyway)"
            cert.Gsql.Certify.cquery diag
    in
    let phys_names =
      List.map (fun p -> String.lowercase_ascii p.Gsql.Split.pname) s.Gsql.Split.phys
    in
    let chan_capacity name =
      match
        List.find_opt
          (fun (p : Gsql.Split.phys_node) -> p.Gsql.Split.pname = name)
          s.Gsql.Split.phys
      with
      | None -> None
      | Some p ->
          let b =
            List.fold_left
              (fun acc input ->
                match input with
                | Gsql.Plan.From_stream { stream; _ }
                  when List.mem (String.lowercase_ascii stream) phys_names
                       || List.exists
                            (fun (_, c) -> Gsql.Certify.burst c stream > 1)
                            t.certs ->
                    max acc (upstream_burst t cert stream)
                | Gsql.Plan.From_stream _ | Gsql.Plan.From_protocol _ -> acc)
              0
              (Gsql.Plan.inputs_of_body p.Gsql.Split.pbody)
          in
          if b > 0 then Some (b + burst_headroom) else None
    in
    let* inst =
      Gsql.Codegen.install t.mgr ~source_binder:(binder t) ?params ~seed:(fresh_seed t)
        ~chan_capacity s
    in
    List.iter
      (fun (p : Gsql.Split.phys_node) ->
        match Rts.Manager.find t.mgr p.Gsql.Split.pname with
        | Some node -> (
            match Gsql.Certify.node_bound cert p.Gsql.Split.pname with
            | Some b -> Rts.Node.set_state_bound node b
            | None -> ())
        | None -> ())
      s.Gsql.Split.phys;
    t.certs <- t.certs @ [ (cert.Gsql.Certify.cquery, cert) ];
    Ok inst
  in
  if t.shards < 2 then install split
  else
    match Gsql.Split.shard ~shards:t.shards split with
    | Ok (sharded, info) ->
        let* inst = install sharded in
        t.shard_infos <- t.shard_infos @ [ info ];
        register_shard_metrics t inst info;
        Ok inst
    | Error reason ->
        t.shard_notes <- t.shard_notes @ [ (split.Gsql.Split.plan.Gsql.Plan.name, reason) ];
        install split

let install_compiled t ?params (c : Gsql.Compile.compiled) =
  (* hoisted FROM subqueries install first so the main query can subscribe *)
  let rec go = function
    | [] -> install_split t ?params c.Gsql.Compile.split
    | (h : Gsql.Compile.compiled) :: rest ->
        let* _helper = install_split t ?params h.Gsql.Compile.split in
        go rest
  in
  let result = go c.Gsql.Compile.helpers in
  (match result with
  | Ok inst ->
      Metrics.Counter.incr (Metrics.counter (metrics t) "engine.queries_installed");
      Log.info (fun m ->
          m "installed query %s (%d nodes)" inst.Gsql.Codegen.inst_name
            (List.length inst.Gsql.Codegen.node_names))
  | Error e -> Log.err (fun m -> m "query install failed: %s" e));
  result

let install_program t ?params text =
  let* compiled = Gsql.Compile.compile_program t.catalog text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (c : Gsql.Compile.compiled) :: rest ->
        let* inst = install_compiled t ?params c in
        go (inst :: acc) rest
  in
  go [] compiled

let install_query t ?params ?name text =
  let* c = Gsql.Compile.compile_query t.catalog ?name text in
  install_compiled t ?params c

let explain t ?memory ?name text =
  let* c = Gsql.Compile.compile_query t.catalog ?name text in
  Ok (Gsql.Compile.explain ?memory c)

let cert_of t name =
  List.find_opt
    (fun (q, _) -> String.lowercase_ascii q = String.lowercase_ascii name)
    t.certs

let certified_burst t name =
  match cert_of t name with Some (_, c) -> Gsql.Certify.query_burst c | None -> 1

let certificate t name = Option.map snd (cert_of t name)

let admit_mode t = t.admit

(* Subscriber rings auto-size like inter-node channels: at least the
   default, grown to cover the query's certified single-step burst. An
   explicit capacity wins. *)
let subscribe t ?capacity name =
  let capacity =
    match capacity with
    | Some _ as c -> c
    | None -> (
        match cert_of t name with
        | Some (_, c) ->
            Some (max t.default_capacity (Gsql.Certify.query_burst c + burst_headroom))
        | None -> None)
  in
  Rts.Manager.subscribe t.mgr ?capacity name

let on_tuple t name f =
  Rts.Manager.on_item t.mgr name (function
    | Rts.Item.Tuple values -> f values
    | Rts.Item.Punct _ | Rts.Item.Flush | Rts.Item.Eof | Rts.Item.Error _ | Rts.Item.Gap _ -> ())

let default_parallel () = env_knob "GIGASCOPE_PARALLEL"

let default_batch () = env_knob "GIGASCOPE_BATCH"

(* GIGASCOPE_SUPERVISE / GIGASCOPE_SHED / GIGASCOPE_FAULTS: the failure
   model's knobs, same CI-matrix stance as above — a malformed value is
   warned about and ignored, never silently honoured as something else. *)
let default_supervise () =
  match Sys.getenv_opt "GIGASCOPE_SUPERVISE" with
  | None | Some "" -> Rts.Supervisor.Fail_fast
  | Some s -> (
      match Rts.Supervisor.policy_of_string s with
      | Ok p -> p
      | Error e ->
          Log.warn (fun m -> m "ignoring GIGASCOPE_SUPERVISE: %s; using fail_fast" e);
          Rts.Supervisor.Fail_fast)

let default_shed () =
  match Sys.getenv_opt "GIGASCOPE_SHED" with
  | None | Some "" -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some f when f > 0.0 && f <= 1.0 -> Some f
      | _ ->
          Log.warn (fun m ->
              m "ignoring GIGASCOPE_SHED=%S: must be a fraction in (0,1]" s);
          None)

(* GIGASCOPE_LATENCY: latency-sampling interval (0 = off, the default —
   sampling costs a clock read per stamped tuple and must be opted
   into, so the byte-identity differentials and throughput baselines
   run unperturbed). *)
let default_latency () =
  match Sys.getenv_opt "GIGASCOPE_LATENCY" with
  | None | Some "" -> 0
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ ->
          Log.warn (fun m ->
              m "ignoring GIGASCOPE_LATENCY=%S: must be a non-negative integer; using 0" s);
          0)

(* GIGASCOPE_WATCHDOG: state-watchdog slack multiplier (>= 1.0; unset
   or 0 = off, the default — enforcement turns certification mistakes
   into faults, so it is opt-in like shedding). *)
let default_watchdog () =
  match Sys.getenv_opt "GIGASCOPE_WATCHDOG" with
  | None | Some "" -> 0.0
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some f when f = 0.0 || f >= 1.0 -> f
      | _ ->
          Log.warn (fun m ->
              m "ignoring GIGASCOPE_WATCHDOG=%S: must be 0 (off) or a slack >= 1.0; using 0" s);
          0.0)

let run t ?quantum ?heartbeats ?heartbeat_period ?on_round ?trace ?parallel ?placement ?batch
    ?supervise ?(restart_budget = 3) ?shed ?latency_sample ?state_slack ?shards () =
  let* () =
    match shards with
    | Some n when max 1 n <> t.shards ->
        err
          "run: shards=%d but the engine was created with shards=%d (sharding rewrites plans \
           at install time; pass ~shards to Engine.create)"
          n t.shards
    | _ -> Ok ()
  in
  let domains = match parallel with Some n -> n | None -> default_parallel () in
  let batch = match batch with Some n -> max 1 n | None -> default_batch () in
  let policy = match supervise with Some p -> p | None -> default_supervise () in
  let shed = match shed with Some _ as s -> s | None -> default_shed () in
  let latency_sample =
    match latency_sample with Some n -> max 0 n | None -> default_latency ()
  in
  let state_slack =
    match state_slack with Some s -> max 0.0 s | None -> default_watchdog ()
  in
  (match Rts.Faults.install_env () with
  | Ok true ->
      Log.warn (fun m ->
          m "fault injection active: %s"
            (match Rts.Faults.current () with
            | Some plan -> Rts.Faults.to_string plan
            | None -> "?"))
  | Ok false -> ()
  | Error e -> Log.warn (fun m -> m "%s; no faults installed" e));
  let supervisor = Rts.Supervisor.create ~policy ~restart_budget () in
  (* on_round hooks mutate live operator state (set_param, flush) from the
     caller; racing them against worker domains is unsound, so their
     presence forces the single-threaded scheduler. *)
  let domains = if on_round <> None then 1 else domains in
  Log.info (fun m ->
      m "run: %d nodes%s%s"
        (List.length (Rts.Manager.nodes t.mgr))
        (if domains > 1 then Printf.sprintf " on %d domains" domains else "")
        (if batch > 1 then Printf.sprintf ", batch %d" batch else ""));
  let result =
    if domains > 1 then
      Rts.Scheduler.run_parallel ?quantum ?heartbeats ?heartbeat_period ?trace ?placement
        ~batch ~domains ~supervisor ?shed ~latency_sample ~state_slack t.mgr
    else
      Rts.Scheduler.run ?quantum ?heartbeats ?heartbeat_period ?on_round ?trace ~batch
        ~supervisor ?shed ~latency_sample ~state_slack t.mgr
  in
  (match result with
  | Ok stats ->
      Log.info (fun m ->
          m "run complete: %d rounds, %d heartbeat requests, %d drops"
            stats.Rts.Scheduler.rounds stats.Rts.Scheduler.heartbeat_requests
            (Rts.Manager.total_drops t.mgr))
  | Error e -> Log.err (fun m -> m "run failed: %s" e));
  result

let flush t name = Rts.Manager.flush t.mgr name

let stats_report t = Rts.Manager.stats_report t.mgr

let shard_report t =
  if t.shards <= 1 then ""
  else begin
    let b = Buffer.create 256 in
    Printf.bprintf b "shards: %d\n" t.shards;
    List.iter
      (fun (info : Gsql.Split.shard_info) ->
        match info.Gsql.Split.smode with
        | Gsql.Split.Hash_key ->
            Printf.bprintf b "  %s: %d replicas, hash-partitioned on the group key\n"
              info.Gsql.Split.squery info.Gsql.Split.sshards
        | Gsql.Split.Round_robin ->
            Printf.bprintf b
              "  %s: %d replicas, keyless plan: round-robin with full reunification merge\n"
              info.Gsql.Split.squery info.Gsql.Split.sshards)
      t.shard_infos;
    List.iter
      (fun (q, reason) -> Printf.bprintf b "  %s: not sharded: %s\n" q reason)
      t.shard_notes;
    Buffer.contents b
  end

(* One line per installed query, shard_report-style; [memory_report]
   below has the full derivation. *)
let memory_summary t =
  if t.certs = [] then ""
  else begin
    let b = Buffer.create 256 in
    Printf.bprintf b "memory (admission %s):\n" (admit_to_string t.admit);
    List.iter
      (fun (q, cert) ->
        match Gsql.Certify.total_estimate cert with
        | Some est ->
            Printf.bprintf b "  %s: bounded, ≈%.0f resident tuples, burst %d\n" q est
              (Gsql.Certify.query_burst cert)
        | None -> (
            match Gsql.Certify.unbounded_nodes cert with
            | u :: _ -> Printf.bprintf b "  %s: UNBOUNDED — %s\n" q (Gsql.Certify.diagnostic u)
            | [] -> Printf.bprintf b "  %s: UNBOUNDED\n" q))
      t.certs;
    Buffer.contents b
  end

let memory_report t =
  String.concat "\n" (List.map (fun (_, cert) -> Gsql.Certify.report cert) t.certs)

let trace_report t = Rts.Manager.trace_report t.mgr ^ shard_report t ^ memory_summary t

let total_drops t = Rts.Manager.total_drops t.mgr
