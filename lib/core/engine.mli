(** The Gigascope engine: everything wired together.

    An engine owns a stream manager, a catalog preloaded with the built-in
    protocols and function library, and a set of named interfaces, each
    with a packet feed and a NIC model. Submitting GSQL text compiles,
    splits, and installs query networks; Protocol sources are bound to
    interfaces on demand, pushing NIC hints (bpf filter + snap length) into
    cards that support them. *)

module Rts = Gigascope_rts
module Gsql = Gigascope_gsql
module Nic = Gigascope_nic.Nic
module Packet = Gigascope_packet.Packet

(** What the interface's card can do; the actual filter program comes from
    the query splitter. *)
type nic_capability =
  | Cap_none  (** deliver everything (plain card) *)
  | Cap_bpf  (** accepts a filter + snap length *)
  | Cap_lfta  (** programmable: runs LFTAs on the card (Tigon-style) *)

type t

(** Admission control: the engine's stance on plans whose memory
    certification ({!Gsql.Certify}) comes back unbounded.
    [Admit_allow] installs silently; [Admit_warn] (the library default)
    installs with a logged diagnostic — the epoch-less flush-driven
    aggregation of Section 2.2 is a legitimate embedded use;
    [Admit_reject] refuses the install with the diagnostic — the
    posture of a server admitting arbitrary GSQL ([gsq run]/[gsq serve]
    default to it; [--allow-unbounded] downgrades to [Admit_warn]). *)
type admit = Admit_allow | Admit_warn | Admit_reject

val admit_of_string : string -> (admit, string) result
(** ["allow" | "warn" | "reject"], case-insensitive. *)

val admit_to_string : admit -> string

val create : ?default_capacity:int -> ?shards:int -> ?admit:admit -> unit -> t
(** [admit] (default from [GIGASCOPE_ADMIT], else [Admit_warn]) is the
    admission stance applied to every subsequent install; a malformed
    env value warns and defaults like the other knobs.

    [shards] (default from [GIGASCOPE_SHARDS], else 1) > 1 makes every
    subsequently installed query data-parallel: the splitter replicates
    the eligible LFTA chain per shard behind a source-side partitioner
    and reunifies the replicas through an order-preserving merge — see
    {!Gsql.Split.shard}. Output stays byte-identical to the unsharded
    engine for every installable query; plans the splitter cannot shard
    install unchanged and {!trace_report} names them with the reason.
    Sharding rewrites plans at install time, which is why the knob
    lives here and not on {!run}. *)

val manager : t -> Rts.Manager.t
val catalog : t -> Gsql.Catalog.t

val metrics : t -> Gigascope_obs.Metrics.t
(** The runtime's metrics registry (owned by the stream manager): every
    node, channel, operator and the scheduler report here. See DESIGN.md
    for the metric namespace. *)

val metrics_snapshot : t -> Gigascope_obs.Metrics.snapshot
(** Convenience: {!Gigascope_obs.Metrics.snapshot} of {!metrics}. *)

val register_function : t -> Rts.Func.t -> unit
(** Extend the function library ("users can make new functions available by
    adding the code to the function library and registering the
    prototype"). *)

val add_interface :
  t ->
  name:string ->
  ?capability:nic_capability ->
  feed:(unit -> unit -> Packet.t option) ->
  unit ->
  unit
(** [feed] is a factory: each Protocol bound to this interface pulls from
    its own fresh iterator (feeds must be deterministic replays for
    multiple bindings to observe the same traffic). *)

val add_packet_list_interface :
  t -> name:string -> ?capability:nic_capability -> Packet.t list -> unit

val add_generator_interface :
  t -> name:string -> ?capability:nic_capability -> Gigascope_traffic.Gen.config -> unit

val add_split_interfaces :
  t -> names:string list -> ?capability:nic_capability -> Gigascope_traffic.Gen.config -> unit
(** Model simplex optical links: the generator's packets are partitioned
    over the named interfaces by flow (config [interface_count] should
    equal the list length). This is the setting that makes MERGE essential
    (Section 2.2). *)

val add_pcap_interface :
  t -> name:string -> ?capability:nic_capability -> string -> (unit, string) result
(** Replay a capture file as an interface. *)

val add_defrag_interface :
  t ->
  name:string ->
  ?capability:nic_capability ->
  ?reassembly_timeout:float ->
  feed:(unit -> unit -> Packet.t option) ->
  unit ->
  unit
(** Like {!add_interface}, with the IP defragmentation operator interposed
    between the feed and interpretation — the paper's example of a special
    user-written node ("we have implemented a special IP defragmentation
    operator in this manner and have built a query tree using it",
    Section 3). Queries over this interface see whole datagrams;
    non-final fragments never reach the Protocol library. *)

val add_session_source :
  t ->
  name:string ->
  ?idle_timeout:float ->
  feed:(unit -> Packet.t option) ->
  unit ->
  (unit, string) result
(** Register a TCP-session stream (see {!Sessions}) fed by a packet feed:
    queries then read closed-session records by [name]. The paper's
    future-work item, "extract the TCP/IP sessions" (Section 5). *)

val add_custom_source :
  t ->
  name:string ->
  schema:Rts.Schema.t ->
  pull:(unit -> Rts.Item.t option) ->
  clock:(unit -> (int * Rts.Value.t) list) ->
  (unit, string) result
(** Bypass the packet path entirely — the paper's escape hatch for
    user-written query nodes (e.g. a Netflow record source or an IP
    defragmentation operator). Registers the schema so queries can read the
    stream by name. *)

val nic_of : t -> string -> Nic.t option
(** The interface's card, for inspecting delivery statistics. *)

val install_program :
  t -> ?params:(string * Rts.Value.t) list -> string -> (Gsql.Codegen.instance list, string) result
(** Compile and install every query in the GSQL text. *)

val install_query :
  t ->
  ?params:(string * Rts.Value.t) list ->
  ?name:string ->
  string ->
  (Gsql.Codegen.instance, string) result

val explain : t -> ?memory:bool -> ?name:string -> string -> (string, string) result
(** Compile only; render plan, split, ordering properties and pseudo-C.
    [~memory:true] appends the {!Gsql.Certify} derivation — per-operator
    state bounds or the unbounded diagnostic ([gsq explain --memory]). *)

val admit_mode : t -> admit

val certificate : t -> string -> Gsql.Certify.t option
(** The memory certificate recorded when the named query was installed
    (post-shard-rewrite), if any. *)

val certified_burst : t -> string -> int
(** Worst-case single-step emission of the named installed query (1 if
    unknown) — what the network server uses to auto-size its egress
    queues. *)

val subscribe : t -> ?capacity:int -> string -> (Rts.Channel.t, string) result
(** Without an explicit [capacity], the subscriber ring is auto-sized:
    at least the engine's default capacity, grown to the query's
    certified burst plus headroom. *)

val on_tuple : t -> string -> (Rts.Value.t array -> unit) -> (unit, string) result
(** Callback for each output tuple of the named stream. *)

val run :
  t ->
  ?quantum:int ->
  ?heartbeats:bool ->
  ?heartbeat_period:int ->
  ?on_round:(int -> unit) ->
  ?trace:bool ->
  ?parallel:int ->
  ?placement:(string * int) list ->
  ?batch:int ->
  ?supervise:Rts.Supervisor.policy ->
  ?restart_budget:int ->
  ?shed:float ->
  ?latency_sample:int ->
  ?state_slack:float ->
  ?shards:int ->
  unit ->
  (Rts.Scheduler.stats, string) result
(** Drive the network until every source is exhausted. [heartbeats]
    enables on-demand punctuation; [heartbeat_period] adds periodic
    source punctuation every N scheduler rounds; [on_round] is the live
    application's hook (change parameters, flush queries); [trace] times
    every scheduler step (instead of a 1-in-8 sample) so
    {!trace_report} gives exact per-operator costs.

    [parallel] (default from [GIGASCOPE_PARALLEL], else 1) > 1 runs the
    network on that many OCaml domains via
    {!Rts.Scheduler.run_parallel} — HFTAs on worker domains, sources and
    LFTAs on the caller; [placement] pins named nodes to domains. Output
    is byte-identical to the single-threaded run. [on_round] forces
    single-threaded execution (the hook mutates live operator state,
    which must not race worker domains).

    [batch] (default from [GIGASCOPE_BATCH], else 1) vectorizes the data
    plane: tuples move through channels, operators and the scheduler in
    runs of up to [batch] ({!Rts.Scheduler.run}'s knob). Output is
    byte-identical for every batch size.

    [supervise] (default from [GIGASCOPE_SUPERVISE], else [Fail_fast])
    chooses the crash policy — see {!Rts.Supervisor}: [Fail_fast] turns
    any node crash into this run's [Error] (naming the node);
    [Isolate] poisons only the crashing subtree ([Item.Error] then
    [Item.Eof] downstream); [Restart] restarts stateless operators in
    place up to [restart_budget] (default 3) times per node. [shed]
    (default from [GIGASCOPE_SHED]) is a high-water fraction in (0,1]:
    sources discard tuples while a subscriber channel sits above it,
    counting them under [rts.shed.<node>] and announcing them
    downstream as [Item.Gap].

    [latency_sample] (default from [GIGASCOPE_LATENCY], else 0 = off)
    arms end-to-end latency measurement: every N-th source tuple is
    stamped at ingest and ingest→deliver durations land in the
    [rts.latency.<query>] histograms (and [net.latency.<query>] at the
    network server's egress). Off by default — the stamp column and
    clock reads are strictly opt-in, so differential tests and
    throughput baselines are unperturbed.

    [state_slack] (default from [GIGASCOPE_WATCHDOG], else 0 = off)
    arms the state watchdog: a node found holding more than its
    certified bound × slack is treated as crashed — the loss announced
    as an in-band [Item.Gap], then the supervision policy applies
    (isolate poisons just that subtree; fail_fast surfaces the node by
    name). Values below 1.0 (other than 0) in the env knob warn and
    default to off.

    If [GIGASCOPE_FAULTS] is set, its fault plan is (re)installed at the
    start of every run — see {!Rts.Faults}.

    [shards] is a guard, not a knob: sharding is fixed when the engine
    is created (see {!create}), so passing a value that disagrees with
    the engine's shard count is an [Error] rather than a silent
    no-op. *)

val flush : t -> string -> (unit, string) result
(** Make the named query emit its open state now — how an analyst gets
    output from an aggregation without an ordered group key
    (Section 2.2). *)

val stats_report : t -> string
(** Per-node runtime statistics (tuples in/out, drops, buffered state). *)

val trace_report : t -> string
(** EXPLAIN-ANALYZE-style per-operator breakdown: tuples, drops, timed
    steps, cumulative service time, ns/tuple (see
    {!Rts.Manager.trace_report}), followed by {!shard_report} when the
    engine is sharded and a one-line-per-query memory summary (bound
    estimate and burst, or the unbounded diagnostic). *)

val memory_report : t -> string
(** The full {!Gsql.Certify} derivation for every installed query. *)

val shards : t -> int
(** The shard count fixed at {!create} (1 = unsharded). *)

val shard_report : t -> string
(** One line per installed query when the engine is sharded: replica
    count and partitioning mode — keyless plans are flagged as falling
    back to round-robin with a full reunification merge — or the
    splitter's reason a query could not shard. [""] when unsharded. *)

val total_drops : t -> int

val log_src : Logs.src
(** The [logs] source ([gigascope.engine]) for engine lifecycle events
    (interface added, query installed, run started/completed). *)
