let now_ns () = Unix.gettimeofday () *. 1e9
