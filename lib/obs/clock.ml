external now_ns : unit -> float = "gigascope_clock_monotonic_ns"
