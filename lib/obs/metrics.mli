(** Typed metrics registry for the LFTA/HFTA runtime.

    The registry answers the paper's central measurement question — "how
    high can the input rate go before tuples drop?" (Section 4) — by making
    every runtime component a measurable one. Three metric kinds:

    - {b counters}: monotone event counts (tuples in/out, drops, evictions);
    - {b gauges}: instantaneous readings (channel depth, open groups),
      either pushed or polled from a closure at snapshot time;
    - {b histograms}: distributions (service time per scheduler round),
      backed by {!Gigascope_util.Stats} (Welford + reservoir percentiles).

    Metric cells are standalone atomic cells created independently of any
    registry, so hot-path components (the LFTA data path) own their cells
    directly: an increment is one lock-free atomic add, no allocation, no
    hashing — and sound to write from a worker domain while another
    domain snapshots the value (the parallel scheduler's workers feed
    node and channel counters live). Histograms are the exception: their
    Welford/reservoir state is unsynchronized, so a histogram written by
    one domain must only be read after that domain has been joined (the
    parallel scheduler joins every worker before control returns to the
    caller, so post-run exposition is safe). Registration only attaches a
    hierarchical name ([rts.node.<query>.<op>.tuples_out]) for snapshots
    and exposition. *)

module Counter : sig
  type t

  val make : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val make : unit -> t
  val set : t -> float -> unit
  val set_int : t -> int -> unit
  val get : t -> float
end

module Histogram : sig
  type t

  val make : ?reservoir:int -> unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val stats : t -> Gigascope_util.Stats.t
  val clear : t -> unit
end

type t
(** A registry: a flat namespace of dot-separated hierarchical names. *)

val create : unit -> t

(** {2 Registration}

    [counter]/[gauge]/[histogram] are get-or-create: a second call with the
    same name returns the {e same} cell; a call whose name is registered
    under a different kind raises [Invalid_argument]. The [attach_*]
    functions register an externally created cell and raise
    [Invalid_argument] if the name is taken (by any kind). *)

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val histogram : ?reservoir:int -> t -> string -> Histogram.t
val attach_counter : t -> string -> Counter.t -> unit
val attach_gauge : t -> string -> Gauge.t -> unit

val attach_gauge_fn : t -> string -> (unit -> float) -> unit
(** A polled gauge: the closure is read at snapshot time. *)

val attach_histogram : t -> string -> Histogram.t -> unit
val mem : t -> string -> bool

val names : t -> string list
(** Sorted. *)

val remove : t -> string -> unit

(** {2 Snapshots} *)

(** Histogram snapshot. Count, total, mean, stddev, min and max are
    exact (Welford over every observation). The quantiles ([h_p50],
    [h_p90], [h_p99]) are estimated from a uniform reservoir sample of
    [k] observations (default 1024, Vitter's algorithm R) by linear
    interpolation on the sorted sample — see {!Gigascope_util.Stats}.

    Error bound: the estimated [q]-quantile is the true quantile of
    rank [q ± e] where the standard error [e = sqrt (q (1 - q) / k)] —
    with the default [k = 1024] about ±1.6 rank points at the median
    and ±0.3 at p99 (one sigma). The {e rank} is what wobbles, not the
    value: on a heavy-tailed latency distribution the reported p99 can
    land anywhere between the true p98.7 and p99.3 (68% confidence),
    wider in value terms where the tail is steep. Quantiles of fewer
    than [k] observations interpolate the full (exact) sample. *)
type hist_snap = {
  h_count : int;
  h_total : float;
  h_mean : float;
  h_stddev : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_snap

type snapshot = (string * value) list
(** Sorted by name. Non-finite readings are reported as 0. *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counters and histogram count/total are differenced; gauges and the
    histogram distribution shape are taken from [after] (they describe
    current state, not accumulation). Names absent from [before] pass
    through unchanged. *)

val delta : t -> snapshot
(** Snapshot relative to the previous [delta] call on this registry (the
    first call is equivalent to {!snapshot}). *)

val find : snapshot -> string -> value option

(** {2 Exposition} *)

val to_json : snapshot -> string

val of_json : string -> (snapshot, string) result
(** Parses exactly the subset {!to_json} emits; [to_json] then [of_json]
    is the identity on snapshots. *)

val to_prometheus : snapshot -> string
(** Prometheus text format: counters and gauges as-is (names sanitized to
    [\[a-zA-Z0-9_:\]]), histograms as summaries with 0.5/0.9/0.99
    quantiles plus [_sum] and [_count]. Every family gets a [# HELP]
    line (carrying the original, unsanitized registry name, escaped per
    the exposition format) followed by its [# TYPE] line. Quantile
    accuracy is the reservoir bound documented on {!hist_snap}. *)

val render : snapshot -> string
(** Human-readable table, one metric per line. *)
