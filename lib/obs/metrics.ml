module Stats = Gigascope_util.Stats

(* ---------------- metric cells ----------------------------------------- *)

(* Atomic, not plain mutable: the parallel scheduler's worker domains
   write node/channel cells while domain 0 reads them for exposition, and
   under the OCaml 5 memory model a plain-field read of another domain's
   write is unsound (arbitrarily stale, no happens-before). An atomic int
   add is still allocation-free on the hot path. *)
module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let incr t = Atomic.incr t
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Gauge = struct
  type t = float Atomic.t

  let make () = Atomic.make 0.0
  let set t x = Atomic.set t x
  let set_int t n = Atomic.set t (float_of_int n)
  let get t = Atomic.get t
end

module Histogram = struct
  type t = { stats : Stats.t }

  let make ?reservoir () = { stats = Stats.create ?reservoir () }
  let observe t x = Stats.add t.stats x
  let count t = Stats.count t.stats
  let total t = Stats.total t.stats
  let stats t = t.stats
  let clear t = Stats.clear t.stats
end

(* ---------------- registry --------------------------------------------- *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_gauge_fn of (unit -> float)
  | M_histogram of Histogram.t

type t = {
  metrics : (string, metric) Hashtbl.t;
  mutable last : snapshot option;  (* previous [delta] baseline *)
}

and hist_snap = {
  h_count : int;
  h_total : float;
  h_mean : float;
  h_stddev : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

and value = Counter of int | Gauge of float | Histogram of hist_snap

and snapshot = (string * value) list

let create () = { metrics = Hashtbl.create 64; last = None }

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ | M_gauge_fn _ -> "gauge"
  | M_histogram _ -> "histogram"

let attach t name metric =
  match Hashtbl.find_opt t.metrics name with
  | Some existing ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name (kind_name existing))
  | None -> Hashtbl.replace t.metrics name metric

let attach_counter t name c = attach t name (M_counter c)
let attach_gauge t name g = attach t name (M_gauge g)
let attach_gauge_fn t name f = attach t name (M_gauge_fn f)
let attach_histogram t name h = attach t name (M_histogram h)

let counter t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_counter c) -> c
  | Some m -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a counter" name (kind_name m))
  | None ->
      let c = Counter.make () in
      Hashtbl.replace t.metrics name (M_counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_gauge g) -> g
  | Some m -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a gauge" name (kind_name m))
  | None ->
      let g = Gauge.make () in
      Hashtbl.replace t.metrics name (M_gauge g);
      g

let histogram ?reservoir t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_histogram h) -> h
  | Some m ->
      invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a histogram" name (kind_name m))
  | None ->
      let h = Histogram.make ?reservoir () in
      Hashtbl.replace t.metrics name (M_histogram h);
      h

let mem t name = Hashtbl.mem t.metrics name
let names t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.metrics [])

let remove t name = Hashtbl.remove t.metrics name

(* ---------------- snapshots -------------------------------------------- *)

(* Non-finite values (empty histogram min/max, a gauge fed infinity) have no
   JSON encoding; observable state reads as 0 instead. *)
let fin f = if Float.is_finite f then f else 0.0

let snap_histogram h =
  let s = Histogram.stats h in
  {
    h_count = Stats.count s;
    h_total = fin (Stats.total s);
    h_mean = fin (Stats.mean s);
    h_stddev = fin (Stats.stddev s);
    h_min = fin (Stats.min_value s);
    h_max = fin (Stats.max_value s);
    h_p50 = fin (Stats.percentile s 50.0);
    h_p90 = fin (Stats.percentile s 90.0);
    h_p99 = fin (Stats.percentile s 99.0);
  }

let snapshot t =
  Hashtbl.fold
    (fun name metric acc ->
      let v =
        match metric with
        | M_counter c -> Counter (Counter.get c)
        | M_gauge g -> Gauge (fin (Gauge.get g))
        | M_gauge_fn f -> Gauge (fin (f ()))
        | M_histogram h -> Histogram (snap_histogram h)
      in
      (name, v) :: acc)
    t.metrics []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find snap name = List.assoc_opt name snap

(* Counters and histogram count/total are differenced; gauges and the
   histogram's distribution shape (mean, percentiles, extrema) describe
   current state, so the [after] side is reported as-is. *)
let diff ~before ~after =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name before) with
      | Counter a, Some (Counter b) -> (name, Counter (a - b))
      | Histogram a, Some (Histogram b) ->
          (name, Histogram { a with h_count = a.h_count - b.h_count; h_total = a.h_total -. b.h_total })
      | _ -> (name, v))
    after

let delta t =
  let now = snapshot t in
  let d = match t.last with None -> now | Some before -> diff ~before ~after:now in
  t.last <- Some now;
  d

(* ---------------- JSON exposition -------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips any finite double through float_of_string. *)
let json_float f = Printf.sprintf "%.17g" f

let to_json snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "  \"%s\": " (json_escape name));
      (match v with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "{\"type\": \"counter\", \"value\": %d}" n)
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "{\"type\": \"gauge\", \"value\": %s}" (json_float g))
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\": \"histogram\", \"count\": %d, \"total\": %s, \"mean\": %s, \"stddev\": \
                %s, \"min\": %s, \"max\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s}"
               h.h_count (json_float h.h_total) (json_float h.h_mean) (json_float h.h_stddev)
               (json_float h.h_min) (json_float h.h_max) (json_float h.h_p50) (json_float h.h_p90)
               (json_float h.h_p99))))
    snap;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* Minimal parser for the subset emitted above: one object of objects whose
   fields are strings or numbers. *)
let of_json text =
  let pos = ref 0 in
  let len = String.length text in
  let error fmt = Printf.ksprintf (fun s -> failwith s) fmt in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "expected '%c' at offset %d, got '%c'" c !pos c'
    | None -> error "expected '%c' at offset %d, got end of input" c !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then error "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then error "unterminated escape");
            (match text.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if !pos + 4 >= len then error "truncated \\u escape";
                let code = int_of_string ("0x" ^ String.sub text (!pos + 1) 4) in
                Buffer.add_char buf (Char.chr (code land 0xff));
                pos := !pos + 4
            | c -> error "unknown escape \\%c" c);
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < len
      && match text.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    if start = !pos then error "expected a number at offset %d" start;
    float_of_string (String.sub text start (!pos - start))
  in
  let parse_fields () =
    (* inner object: { "k": <string|number>, ... } *)
    expect '{';
    let fields = ref [] in
    let rec go () =
      skip_ws ();
      match peek () with
      | Some '}' -> advance ()
      | _ ->
          let k = parse_string () in
          expect ':';
          skip_ws ();
          let v =
            match peek () with
            | Some '"' -> `S (parse_string ())
            | _ -> `F (parse_number ())
          in
          fields := (k, v) :: !fields;
          skip_ws ();
          (match peek () with
          | Some ',' ->
              advance ();
              go ()
          | Some '}' -> advance ()
          | _ -> error "expected ',' or '}' at offset %d" !pos)
    in
    go ();
    List.rev !fields
  in
  let value_of_fields name fields =
    let str k = match List.assoc_opt k fields with Some (`S s) -> Some s | _ -> None in
    let num k = match List.assoc_opt k fields with Some (`F f) -> Some f | _ -> None in
    let req k = match num k with Some f -> f | None -> error "%s: missing field %s" name k in
    match str "type" with
    | Some "counter" -> Counter (int_of_float (req "value"))
    | Some "gauge" -> Gauge (req "value")
    | Some "histogram" ->
        Histogram
          {
            h_count = int_of_float (req "count");
            h_total = req "total";
            h_mean = req "mean";
            h_stddev = req "stddev";
            h_min = req "min";
            h_max = req "max";
            h_p50 = req "p50";
            h_p90 = req "p90";
            h_p99 = req "p99";
          }
    | Some k -> error "%s: unknown metric type %s" name k
    | None -> error "%s: missing type field" name
  in
  try
    expect '{';
    let entries = ref [] in
    let rec go () =
      skip_ws ();
      match peek () with
      | Some '}' -> advance ()
      | _ ->
          let name = parse_string () in
          expect ':';
          let fields = parse_fields () in
          entries := (name, value_of_fields name fields) :: !entries;
          skip_ws ();
          (match peek () with
          | Some ',' ->
              advance ();
              go ()
          | Some '}' -> advance ()
          | _ -> error "expected ',' or '}' at offset %d" !pos)
    in
    go ();
    Ok (List.sort (fun (a, _) (b, _) -> compare a b) !entries)
  with Failure msg -> Error ("metrics JSON: " ^ msg)

(* ---------------- Prometheus exposition -------------------------------- *)

let prom_name name =
  let s =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
      name
  in
  (* a metric name must not start with a digit *)
  if s = "" then "_" else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* HELP text escaping per the exposition format: backslash and newline
   only (label values additionally escape double quotes, but we emit
   none in HELP). *)
let prom_help_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      (* the original registry name (dots, arrows and all) survives in
         the HELP line, so a scrape stays mappable back to the registry
         after sanitization *)
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s Gigascope registry metric %s\n" n (prom_help_escape name));
      match v with
      | Counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n c)
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (prom_float g))
      | Histogram h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"0.5\"} %s\n" n (prom_float h.h_p50));
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"0.9\"} %s\n" n (prom_float h.h_p90));
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"0.99\"} %s\n" n (prom_float h.h_p99));
          Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (prom_float h.h_total));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.h_count))
    snap;
  Buffer.contents buf

(* ---------------- human rendering --------------------------------------- *)

let render snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%-52s %-10s %s\n" "metric" "type" "value");
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-52s %-10s %d\n" name "counter" c)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%-52s %-10s %g\n" name "gauge" g)
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf "%-52s %-10s count=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f\n" name
               "histogram" h.h_count h.h_mean h.h_p50 h.h_p99 h.h_max))
    snap;
  Buffer.contents buf
