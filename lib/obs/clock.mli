(** Wall-clock time source for service-time measurements. *)

val now_ns : unit -> float
(** Current wall-clock time in nanoseconds (microsecond resolution). *)
