(** Monotonic time source for service-time measurements. *)

val now_ns : unit -> float
(** Current monotonic time in nanoseconds. The epoch is arbitrary (boot
    time on Linux): readings are only meaningful as differences. Unlike
    wall-clock time, a reading never goes backwards — an NTP step
    mid-run cannot corrupt interval measurements. *)
