/* Monotonic clock for service-time measurement.

   Unix.gettimeofday is wall-clock time: an NTP step (or a manual date
   change) mid-run makes intervals negative or wildly large, corrupting
   every service-time histogram fed from Clock.now_ns. CLOCK_MONOTONIC
   is immune to clock steps; its epoch is arbitrary, which is fine —
   every caller only ever subtracts two readings. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value gigascope_clock_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return caml_copy_double((double)ts.tv_sec * 1e9 + (double)ts.tv_nsec);
}
