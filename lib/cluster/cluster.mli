(** Distributed aggregation trees: the LFTA/HFTA split stretched over a
    {!Topology}.

    One GSQL aggregation is compiled once and cut level-aware across the
    tree: every {e edge} (leaf) runs the sub-aggregating LFTA over its
    own feed; every {e interior} node merges its children's partial
    streams and re-reduces them with the relay decomposition of
    {!Gigascope_rts.Agg_fn.relay_kind} (counts sum, mins min, sketch
    states merge); the {e root} completes the query with the original
    super-aggregating HFTA. Mergeable sketch states
    ([approx_count_distinct], [heavy_hitters], [cm_count]) ride the
    links as opaque {!Gigascope_net.Wire} values, so a node's uplink
    traffic is bounded by (groups x sketch size), not by what it saw.

    Every node is a full engine + network server pair connected over
    loopback TCP — the same wire protocol, framing, reconnect-and-resume
    and gap accounting as a multi-host deployment, in one process.

    Loss is visible, never silent: a severed link resumes with a leading
    [Item.Gap] sized exactly to what was lost, gaps ride batches through
    merge and relay aggregation to the root, and a permanently dead node
    surfaces as one in-band [Item.Error] followed by [Eof] — a partial
    result, not a wedge.

    Metrics (registry of {!metrics}, all under [cluster.*]):
    - [cluster.link.<child>-><parent>.{tuples,gaps,gap_events,errors}]
    - [cluster.node.<name>.{alive,out,level}]
    - [cluster.level.<n>.out] — tuples leaving that level, for
      per-level reduction ratios (see {!report}). *)

module Rts = Gigascope_rts

type t

val launch :
  topo:Topology.t ->
  program:string ->
  feed:(edge:string -> index:int -> unit -> Rts.Value.t array option) ->
  ?capacity:int ->
  ?reconnect:Gigascope_net.Client.reconnect ->
  unit ->
  (t, string) result
(** Compile [program] (PROTOCOL definitions plus one aggregation query;
    the last query is the cluster query), cut it across [topo], and wire
    every node: engines created, servers listening on loopback, links
    subscribed. Nothing runs yet — call {!run}.

    [feed] supplies each edge node's input: called once per leaf with
    its name and breadth-first index, it returns a puller of rows in the
    query's input-protocol schema ([None] = end of stream).

    Errors (one line each): topology or GSQL problems, and plans the
    tree cannot host — the query must split into an LFTA
    sub-aggregation and an HFTA with an exact (unbanded) epoch key, the
    same eligibility rule as {!Gigascope_gsql.Split.shard}. *)

val probe : program:string -> (string * Rts.Schema.t * Rts.Schema.t, string) result
(** Compile [program] exactly as {!launch} would — same eligibility
    checks, same errors — and report (query name, input schema, output
    schema) without building any node. For feeders that must synthesize
    input rows before launching. *)

val query_name : t -> string
val out_schema : t -> Rts.Schema.t

val run : ?timeout:float -> t -> (unit, string) result
(** Drive every node's engine (leaves to root, one thread each) until
    the feeds are exhausted and the root query completes. [timeout]
    (seconds, default 60) bounds the whole run: on expiry every server
    is stopped, the cascade unwinds cleanly, and the result is an
    [Error]. A node whose engine run fails names itself in the
    [Error]. *)

val results : t -> Rts.Item.t list
(** Every item the root query emitted, in order ([Item.Tuple],
    [Item.Gap], [Item.Error], punctuation). Grows live during {!run}. *)

val kill_node : t -> string -> (int, string) result
(** Chaos: abruptly sever the node's uplink socket(s), as a crash or
    pulled cable would ({!Gigascope_net.Server.sever_subscribers}). The
    parent's link reconnects and resumes; what the dead socket swallowed
    arrives as an exact [Item.Gap]. Returns the number of severed
    connections. [Error] for unknown names and the root (no uplink). *)

val stop_node : t -> string -> (unit, string) result
(** Chaos: permanently stop the node's server. The parent's link
    exhausts its reconnect budget, then surfaces one in-band
    [Item.Error] and ends — downstream completes with partial data. *)

val metrics : t -> Gigascope_obs.Metrics.t
(** The [cluster.*] registry (shared by every link and node gauge). *)

val link_stats : t -> (string * string * int * int * int) list
(** Per link, child to parent: (child, parent, tuples delivered, tuples
    lost to gaps, error markers). *)

val node_out : t -> string -> int
(** Tuples the named node's top query node has emitted. *)

val report : t -> string
(** Human-readable tree report: per-node liveness and output counts,
    per-link delivered/gap/byte counts, and the per-level reduction
    ratio (tuples entering the level / tuples leaving it). *)

val shutdown : t -> unit
(** Stop every server, join every thread. Idempotent. *)
