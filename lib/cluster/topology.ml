type t = {
  t_root : string;
  t_children : (string, string list) Hashtbl.t;
  t_parent : (string, string) Hashtbl.t;
  t_order : string list;  (* breadth-first from the root *)
}

let max_children = 64

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '-')
       s

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* One line -> (name, children). [name] alone and [name:] both declare a
   leaf; interior declarations list children after the colon. *)
let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then Ok None
  else
    let name, rest =
      match String.index_opt line ':' with
      | Some i ->
          (String.trim (String.sub line 0 i),
           String.sub line (i + 1) (String.length line - i - 1))
      | None -> (line, "")
    in
    let kids = split_ws rest in
    if not (valid_name name) then err "topology: bad node name %S (line %d)" name lineno
    else
      match List.find_opt (fun k -> not (valid_name k)) kids with
      | Some k -> err "topology: bad child name %S (line %d)" k lineno
      | None ->
          if List.length kids > max_children then
            err "topology: %s declares %d children (max %d, line %d)" name
              (List.length kids) max_children lineno
          else
            let rec dup = function
              | [] -> None
              | k :: rest -> if List.mem k rest then Some k else dup rest
            in
            (match dup kids with
            | Some k -> err "topology: %s lists child %s twice (line %d)" name k lineno
            | None -> Ok (Some (name, kids, lineno)))

let parse text =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  let* decls =
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc)
      | l :: rest -> (
          match parse_line lineno l with
          | Error _ as e -> e
          | Ok None -> go acc (lineno + 1) rest
          | Ok (Some d) -> go (d :: acc) (lineno + 1) rest)
    in
    go [] 1 lines
  in
  if decls = [] then Error "topology: empty (no nodes declared)"
  else
    let children = Hashtbl.create 16 and parent = Hashtbl.create 16 in
    let declared = Hashtbl.create 16 in
    let* () =
      let rec go = function
        | [] -> Ok ()
        | (name, kids, lineno) :: rest ->
            if Hashtbl.mem declared name then
              err "topology: duplicate declaration of %s (line %d)" name lineno
            else begin
              Hashtbl.replace declared name lineno;
              Hashtbl.replace children name kids;
              go rest
            end
      in
      go decls
    in
    let* () =
      let rec go = function
        | [] -> Ok ()
        | (name, kids, lineno) :: rest ->
            let rec each = function
              | [] -> go rest
              | k :: more ->
                  if k = name then err "topology: %s is its own child (line %d)" name lineno
                  else (
                    match Hashtbl.find_opt parent k with
                    | Some p when p <> name ->
                        err "topology: %s has two parents (%s and %s)" k p name
                    | Some _ -> err "topology: %s is listed under %s twice" k name
                    | None ->
                        Hashtbl.replace parent k name;
                        if not (Hashtbl.mem children k) then Hashtbl.replace children k [];
                        each more)
            in
            each kids
      in
      go decls
    in
    let all = Hashtbl.fold (fun n _ acc -> n :: acc) children [] in
    let roots = List.filter (fun n -> not (Hashtbl.mem parent n)) all in
    let* root =
      match List.sort compare roots with
      | [ r ] -> Ok r
      | [] -> Error "topology: no root (every node has a parent: the tree is cyclic)"
      | r :: r' :: _ -> err "topology: two roots (%s and %s): the tree is disconnected" r r'
    in
    if Hashtbl.find children root = [] then
      err "topology: root %s has no children (a cluster needs at least one edge)" root
    else begin
      (* breadth-first walk; single-parent + one-root means anything not
         reached is either disconnected or on a cycle *)
      let order = ref [] and seen = Hashtbl.create 16 in
      let q = Queue.create () in
      Queue.push root q;
      Hashtbl.replace seen root ();
      while not (Queue.is_empty q) do
        let n = Queue.pop q in
        order := n :: !order;
        List.iter
          (fun k ->
            if not (Hashtbl.mem seen k) then begin
              Hashtbl.replace seen k ();
              Queue.push k q
            end)
          (Hashtbl.find children n)
      done;
      match List.find_opt (fun n -> not (Hashtbl.mem seen n)) (List.sort compare all) with
      | Some n -> err "topology: %s is unreachable from root %s (disconnected or cyclic)" n root
      | None ->
          Ok { t_root = root; t_children = children; t_parent = parent; t_order = List.rev !order }
    end

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error ("topology: " ^ e)

let root t = t.t_root
let children t n = Option.value (Hashtbl.find_opt t.t_children n) ~default:[]
let parent t n = Hashtbl.find_opt t.t_parent n
let nodes t = t.t_order
let is_leaf t n = children t n = [] && Hashtbl.mem t.t_children n
let leaves t = List.filter (is_leaf t) t.t_order

let depth t n =
  let rec up n acc =
    match parent t n with None -> acc | Some p -> up p (acc + 1)
  in
  if Hashtbl.mem t.t_children n then up n 0 else -1

let height t = List.fold_left (fun acc n -> max acc (depth t n)) 0 t.t_order
let size t = List.length t.t_order

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun n ->
      match children t n with
      | [] -> ()
      | kids -> Format.fprintf fmt "%s: %s@ " n (String.concat " " kids))
    t.t_order;
  Format.fprintf fmt "@]"
