module E = Gigascope.Engine
module Gsql = Gigascope_gsql
module Rts = Gigascope_rts
module Schema = Rts.Schema
module Item = Rts.Item
module Metrics = Gigascope_obs.Metrics
module Server = Gigascope_net.Server
module Client = Gigascope_net.Client
module Addr = Gigascope_net.Addr

let log_src = Logs.Src.create "gigascope.cluster" ~doc:"Gigascope aggregation trees"

module Log = (val Logs.src_log log_src : Logs.LOG)

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------- plan surgery --------------------------------- *)

(* The stream name every edge node's feed is registered under. *)
let edge_source = "_cluster_in"

(* Compile the program once and insist on the tree-splittable shape: an
   LFTA sub-aggregation below an HFTA, with an exact epoch key — the
   same eligibility rule the shard splitter applies, because every level
   boundary is reunified by a merge ordered on the epoch column. *)
let compile_tree program =
  let scratch = E.create ~shards:1 () in
  let catalog = E.catalog scratch in
  let* compiled = Gsql.Compile.compile_program catalog program in
  let* c =
    match List.rev compiled with
    | [] -> Error "cluster: no query in program"
    | c :: _ -> Ok c
  in
  if c.Gsql.Compile.helpers <> [] then
    Error "cluster: FROM-clause subqueries cannot be cut across a tree"
  else
    match c.Gsql.Compile.split.Gsql.Split.phys with
    | [
     ({ Gsql.Split.pkind = Rts.Node.Lfta; pbody = Gsql.Plan.Agg la; _ } as lfta);
     ({ Gsql.Split.pkind = Rts.Node.Hfta; _ } as hfta);
    ] -> (
        match (la.Gsql.Plan.epoch, la.Gsql.Plan.epoch_in_field) with
        | Some ek, Some _ when la.Gsql.Plan.epoch_band = 0.0 ->
            Ok (c.Gsql.Compile.split.Gsql.Split.plan, lfta, la, hfta, ek)
        | None, _ ->
            Error "cluster: the query needs an ordered (epoch) group key to align tree levels on"
        | _, None -> Error "cluster: the epoch key cannot translate punctuation"
        | _, _ -> Error "cluster: a banded epoch gives tree merges unsound bounds")
    | _ ->
        Error
          "cluster: the query must split into an LFTA sub-aggregation and an HFTA (an aggregation over a protocol with cheap keys and arguments)"

(* An edge node runs the sub-aggregating LFTA verbatim, with the
   protocol input rebound to the node's own feed stream. *)
let edge_split plan (lfta : Gsql.Split.phys_node) (la : Gsql.Plan.agg_body) =
  let schema = Gsql.Plan.input_schema la.Gsql.Plan.agg_input in
  {
    Gsql.Split.plan = { plan with Gsql.Plan.name = lfta.Gsql.Split.pname };
    phys =
      [
        {
          lfta with
          Gsql.Split.pbody =
            Gsql.Plan.Agg
              {
                la with
                Gsql.Plan.agg_input = Gsql.Plan.From_stream { stream = edge_source; schema };
              };
          pnic = None;
        };
      ];
  }

let identity_items schema =
  List.mapi
    (fun i (f : Schema.field) -> (Gsql.Expr_ir.Field (i, f.Schema.ty), f.Schema.name))
    (Array.to_list (Schema.fields schema))

let merge_node ~pname ~inputs ~schema ~ek =
  {
    Gsql.Split.pname;
    pkind = Rts.Node.Hfta;
    pbody =
      Gsql.Plan.Merge
        {
          Gsql.Plan.merge_inputs =
            List.map (fun s -> Gsql.Plan.From_stream { stream = s; schema }) inputs;
          merge_field = ek;
        };
    pschema = schema;
    pnic = None;
    ptable_bits = 0;
    pplace = None;
    pshard = None;
  }

(* An interior node merges its children's partial streams on the epoch
   column and re-reduces them with the relay decomposition: the input
   and output schema are both the LFTA partial schema, so relays stack
   to any tree height. *)
let relay_split plan (lfta : Gsql.Split.phys_node) (la : Gsql.Plan.agg_body) ~ek ~inputs =
  let lschema = lfta.Gsql.Split.pschema in
  let n_keys = List.length la.Gsql.Plan.keys in
  let merge_name = "_merge" ^ lfta.Gsql.Split.pname in
  let keys =
    List.filteri (fun i _ -> i < n_keys) (identity_items lschema)
  in
  let aggs =
    List.mapi
      (fun j (c : Gsql.Plan.agg_call) ->
        let f = Schema.field_at lschema (n_keys + j) in
        {
          Gsql.Plan.kind = Rts.Agg_fn.relay_kind c.Gsql.Plan.kind;
          arg = Some (Gsql.Expr_ir.Field (n_keys + j, f.Schema.ty));
          agg_name = f.Schema.name;
        })
      la.Gsql.Plan.aggs
  in
  let relay =
    {
      Gsql.Split.pname = lfta.Gsql.Split.pname;
      pkind = Rts.Node.Hfta;
      pbody =
        Gsql.Plan.Agg
          {
            Gsql.Plan.agg_input = Gsql.Plan.From_stream { stream = merge_name; schema = lschema };
            agg_pred = None;
            keys;
            epoch = la.Gsql.Plan.epoch;
            epoch_dir = la.Gsql.Plan.epoch_dir;
            epoch_band = 0.0;
            epoch_in_field = Some ek;
            aggs;
            agg_items = identity_items lschema;
            having = None;
          };
      pschema = lschema;
      pnic = None;
      ptable_bits = 0;
      pplace = None;
      pshard = None;
    }
  in
  {
    Gsql.Split.plan = { plan with Gsql.Plan.name = lfta.Gsql.Split.pname };
    phys = [ merge_node ~pname:merge_name ~inputs ~schema:lschema ~ek; relay ];
  }

(* The root merges its children under the LFTA's name, so the original
   super-aggregating HFTA installs unchanged on top. *)
let root_split plan (lfta : Gsql.Split.phys_node) hfta ~ek ~inputs =
  {
    Gsql.Split.plan;
    phys = [ merge_node ~pname:lfta.Gsql.Split.pname ~inputs ~schema:lfta.Gsql.Split.pschema ~ek; hfta ];
  }

let no_sources =
  {
    Gsql.Codegen.bind_source =
      (fun ~interface:_ ~protocol:_ ~nic:_ ->
        Error "cluster: protocol sources are rebound to node feeds");
  }

let install engine split =
  Result.map
    (fun (_ : Gsql.Codegen.instance) -> ())
    (Gsql.Codegen.install (E.manager engine) ~source_binder:no_sources split)

(* ------------------------- the live tree -------------------------------- *)

type link = {
  l_from : string;
  l_to : string;
  l_tuples : Metrics.Counter.t;  (* tuples delivered over the link *)
  l_gaps : Metrics.Counter.t;  (* tuples lost, summed from Gap markers *)
  l_events : Metrics.Counter.t;  (* Gap markers seen *)
  l_errors : Metrics.Counter.t;  (* in-band Error markers (dead child) *)
}

type cnode = {
  cn_name : string;
  cn_level : int;
  cn_top : string;  (* the node's output query name in its own engine *)
  cn_engine : E.t;
  cn_server : Server.t option;  (* None at the root: its output stays local *)
  cn_alive : Metrics.Gauge.t;
  mutable cn_done : (unit, string) result option;
  mutable cn_thread : Thread.t option;
}

type t = {
  topo : Topology.t;
  query : string;
  out_schema : Schema.t;
  reg : Metrics.t;
  cnodes : (string * cnode) list;  (* breadth-first: root first *)
  links : link list;
  results : Item.t list ref;
  rmu : Mutex.t;
  mutable started : bool;
  mutable stopped : bool;
}

let probe ~program =
  let* plan, _, la, hfta, _ = compile_tree program in
  Ok
    ( plan.Gsql.Plan.name,
      Gsql.Plan.input_schema la.Gsql.Plan.agg_input,
      hfta.Gsql.Split.pschema )

let query_name t = t.query
let out_schema t = t.out_schema
let metrics t = t.reg
let results t =
  Mutex.lock t.rmu;
  let r = List.rev !(t.results) in
  Mutex.unlock t.rmu;
  r

let find_node t name = List.assoc_opt name t.cnodes

let node_out t name =
  match find_node t name with
  | None -> 0
  | Some cn -> (
      match Rts.Manager.find (E.manager cn.cn_engine) cn.cn_top with
      | Some node -> Rts.Node.tuples_out node
      | None -> 0)

let link_stats t =
  List.map
    (fun l ->
      ( l.l_from,
        l.l_to,
        Metrics.Counter.get l.l_tuples,
        Metrics.Counter.get l.l_gaps,
        Metrics.Counter.get l.l_errors ))
    t.links

(* Wrap a link's pull with the cluster's per-link accounting. *)
let counted_source reg ~from_ ~to_ (src : Rts.Node.source) =
  let pfx = Printf.sprintf "cluster.link.%s->%s" from_ to_ in
  let l =
    {
      l_from = from_;
      l_to = to_;
      l_tuples = Metrics.counter reg (pfx ^ ".tuples");
      l_gaps = Metrics.counter reg (pfx ^ ".gaps");
      l_events = Metrics.counter reg (pfx ^ ".gap_events");
      l_errors = Metrics.counter reg (pfx ^ ".errors");
    }
  in
  let pull () =
    match src.Rts.Node.pull () with
    | Some (Item.Tuple _) as r ->
        Metrics.Counter.incr l.l_tuples;
        r
    | Some (Item.Gap n) as r ->
        Metrics.Counter.incr l.l_events;
        Metrics.Counter.add l.l_gaps (max n 0);
        r
    | Some (Item.Error _) as r ->
        Metrics.Counter.incr l.l_errors;
        r
    | r -> r
  in
  ({ Rts.Node.pull; clock = src.Rts.Node.clock }, l)

let launch ~topo ~program ~feed ?(capacity = 4096) ?(reconnect = Client.default_reconnect) () =
  let* plan, lfta, la, hfta, ek = compile_tree program in
  let lfta_name = lfta.Gsql.Split.pname in
  let in_schema = Gsql.Plan.input_schema la.Gsql.Plan.agg_input in
  let reg = Metrics.create () in
  let results = ref [] and rmu = Mutex.create () in
  let servers = ref [] in
  let cleanup () = List.iter Server.stop !servers in
  let leaf_index =
    List.mapi (fun i n -> (n, i)) (Topology.leaves topo)
  in
  (* children before parents, so every child's server is listening by
     the time its parent dials *)
  let order = List.rev (Topology.nodes topo) in
  let rec build (addrs : (string * Addr.t) list) (links : link list) acc = function
    | [] -> Ok (acc, links)
    | name :: rest ->
        let is_root = name = Topology.root topo in
        let engine = E.create ~default_capacity:capacity ~shards:1 () in
        let kids = Topology.children topo name in
        let* split, links =
          if kids = [] then begin
            let index = List.assoc name leaf_index in
            let rows = feed ~edge:name ~index in
            let pull () =
              match rows () with Some vs -> Some (Item.Tuple vs) | None -> None
            in
            let* () =
              E.add_custom_source engine ~name:edge_source ~schema:in_schema ~pull
                ~clock:(fun () -> [])
            in
            Ok (edge_split plan lfta la, links)
          end
          else begin
            let rec connect links srcs = function
              | [] -> Ok (List.rev srcs, links)
              | child :: more -> (
                  match List.assoc_opt child addrs with
                  | None -> err "cluster: internal error: %s has no address" child
                  | Some addr -> (
                      match
                        Client.connect ~peer_name:(name ^ "<-" ^ child) ~reconnect
                          ~metrics:reg addr
                      with
                      | Error e -> err "cluster: %s cannot reach %s: %s" name child e
                      | Ok client -> (
                          match Client.subscribe client lfta_name with
                          | Error e -> err "cluster: %s subscribing to %s: %s" name child e
                          | Ok _schema ->
                              let src, link =
                                counted_source reg ~from_:child ~to_:name
                                  (Client.source client)
                              in
                              let sname = "_up_" ^ child in
                              let* () =
                                E.add_custom_source engine ~name:sname
                                  ~schema:lfta.Gsql.Split.pschema ~pull:src.Rts.Node.pull
                                  ~clock:src.Rts.Node.clock
                              in
                              connect (link :: links) (sname :: srcs) more)))
            in
            let* srcs, links = connect links [] kids in
            let split =
              if is_root then root_split plan lfta hfta ~ek ~inputs:srcs
              else relay_split plan lfta la ~ek ~inputs:srcs
            in
            Ok (split, links)
          end
        in
        let* () = install engine split in
        let top = (split.Gsql.Split.plan).Gsql.Plan.name in
        let* server, addrs =
          if is_root then Ok (None, addrs)
          else begin
            (* Block, not drop: inside the tree, backpressure through
               TCP is the correct slow-parent behavior — partial
               aggregates must not be silently lost at a full queue *)
            let server = Server.create ~policy:Server.Block engine in
            match Server.listen server (Addr.Tcp ("127.0.0.1", 0)) with
            | Error e ->
                Server.stop server;
                err "cluster: %s cannot listen: %s" name e
            | Ok bound ->
                servers := server :: !servers;
                Ok (Some server, (name, bound) :: addrs)
          end
        in
        let* () =
          if is_root then
            Rts.Manager.on_item (E.manager engine) top (fun item ->
                Mutex.lock rmu;
                results := item :: !results;
                Mutex.unlock rmu)
          else Ok ()
        in
        let level = Topology.depth topo name in
        let alive = Metrics.gauge reg (Printf.sprintf "cluster.node.%s.alive" name) in
        Metrics.Gauge.set_int (Metrics.gauge reg (Printf.sprintf "cluster.node.%s.level" name)) level;
        let cn =
          {
            cn_name = name;
            cn_level = level;
            cn_top = top;
            cn_engine = engine;
            cn_server = server;
            cn_alive = alive;
            cn_done = None;
            cn_thread = None;
          }
        in
        Metrics.attach_gauge_fn reg
          (Printf.sprintf "cluster.node.%s.out" name)
          (fun () ->
            match Rts.Manager.find (E.manager engine) top with
            | Some node -> float_of_int (Rts.Node.tuples_out node)
            | None -> 0.0);
        build addrs links ((name, cn) :: acc) rest
  in
  match build [] [] [] order with
  | Error e ->
      cleanup ();
      Error e
  | Ok (cnodes, links) ->
      let t =
        {
          topo;
          query = plan.Gsql.Plan.name;
          out_schema = hfta.Gsql.Split.pschema;
          reg;
          cnodes;  (* build consumed reverse-topological order, so this
                      is breadth-first again: root first *)
          links;
          results;
          rmu;
          started = false;
          stopped = false;
        }
      in
      (* per-level output totals, for reduction ratios *)
      let levels = List.sort_uniq compare (List.map (fun (_, cn) -> cn.cn_level) cnodes) in
      List.iter
        (fun l ->
          Metrics.attach_gauge_fn reg
            (Printf.sprintf "cluster.level.%d.out" l)
            (fun () ->
              List.fold_left
                (fun acc (name, cn) ->
                  if cn.cn_level = l then acc +. float_of_int (node_out t name) else acc)
                0.0 cnodes))
        levels;
      Log.info (fun m ->
          m "cluster %s: %d nodes, height %d" t.query (Topology.size topo) (Topology.height topo));
      Ok t

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter
      (fun (_, cn) -> match cn.cn_server with Some s -> Server.stop s | None -> ())
      t.cnodes;
    List.iter
      (fun (_, cn) -> match cn.cn_thread with Some th -> Thread.join th | None -> ())
      t.cnodes
  end

let run ?(timeout = 60.0) t =
  if t.started then Error "cluster: already ran"
  else begin
    t.started <- true;
    List.iter
      (fun (_, cn) ->
        let th =
          Thread.create
            (fun () ->
              Metrics.Gauge.set cn.cn_alive 1.0;
              let r =
                match E.run cn.cn_engine () with
                | Ok _ -> Ok ()
                | Error e -> Error e
              in
              cn.cn_done <- Some r;
              Metrics.Gauge.set cn.cn_alive 0.0)
            ()
        in
        cn.cn_thread <- Some th)
      (List.rev t.cnodes);
    let deadline = Unix.gettimeofday () +. timeout in
    let rec wait () =
      if List.for_all (fun (_, cn) -> cn.cn_done <> None) t.cnodes then Ok ()
      else if Unix.gettimeofday () > deadline then Error `Timeout
      else begin
        Thread.delay 0.01;
        wait ()
      end
    in
    match wait () with
    | Error `Timeout ->
        shutdown t;
        err "cluster: run timed out after %gs" timeout
    | Ok () -> (
        List.iter
          (fun (_, cn) ->
            match cn.cn_server with
            | Some s -> ignore (Server.drain ~timeout:5.0 s)
            | None -> ())
          t.cnodes;
        let failures =
          List.filter_map
            (fun (name, cn) ->
              match cn.cn_done with Some (Error e) -> Some (name, e) | _ -> None)
            t.cnodes
        in
        match failures with
        | [] -> Ok ()
        | (name, e) :: _ -> err "cluster: node %s failed: %s" name e)
  end

let kill_node t name =
  match find_node t name with
  | None -> err "cluster: unknown node %s" name
  | Some { cn_server = None; _ } -> err "cluster: %s is the root (no uplink to sever)" name
  | Some { cn_server = Some s; _ } ->
      let n = Server.sever_subscribers s in
      Log.info (fun m -> m "killed %s: severed %d uplink(s)" name n);
      Ok n

let stop_node t name =
  match find_node t name with
  | None -> err "cluster: unknown node %s" name
  | Some { cn_server = None; _ } -> err "cluster: %s is the root (no uplink server)" name
  | Some { cn_server = Some s; _ } ->
      Server.stop s;
      Log.info (fun m -> m "stopped %s permanently" name);
      Ok ()

let report t =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "cluster %s: %d nodes, height %d\n" t.query (Topology.size t.topo)
    (Topology.height t.topo);
  List.iter
    (fun (name, cn) ->
      let role =
        if cn.cn_level = 0 then "root"
        else if Topology.is_leaf t.topo name then "edge"
        else "relay"
      in
      let state =
        match cn.cn_done with
        | None -> if cn.cn_thread = None then "idle" else "running"
        | Some (Ok ()) -> "done"
        | Some (Error e) -> "failed: " ^ e
      in
      Printf.bprintf buf "  node %-12s level %d  %-5s out=%-8d %s\n" name cn.cn_level role
        (node_out t name) state)
    t.cnodes;
  List.iter
    (fun l ->
      let bytes =
        match find_node t l.l_from with
        | Some cn -> (
            match
              Metrics.find (Metrics.snapshot (E.metrics cn.cn_engine)) "net.bytes_out"
            with
            | Some (Metrics.Counter n) -> n
            | _ -> 0)
        | None -> 0
      in
      Printf.bprintf buf "  link %s->%s: tuples=%d gaps=%d (markers=%d) errors=%d bytes=%d\n"
        l.l_from l.l_to (Metrics.Counter.get l.l_tuples) (Metrics.Counter.get l.l_gaps)
        (Metrics.Counter.get l.l_events) (Metrics.Counter.get l.l_errors) bytes)
    t.links;
  let levels =
    List.sort_uniq compare (List.map (fun (_, cn) -> cn.cn_level) t.cnodes)
  in
  List.iter
    (fun l ->
      let out =
        List.fold_left
          (fun acc (name, cn) -> if cn.cn_level = l then acc + node_out t name else acc)
          0 t.cnodes
      in
      let into =
        List.fold_left
          (fun acc lk ->
            match find_node t lk.l_to with
            | Some cn when cn.cn_level = l -> acc + Metrics.Counter.get lk.l_tuples
            | _ -> acc)
          0 t.links
      in
      if into > 0 && out > 0 then
        Printf.bprintf buf "  level %d: in=%d out=%d reduction=%.1fx\n" l into out
          (float_of_int into /. float_of_int out)
      else Printf.bprintf buf "  level %d: out=%d\n" l out)
    levels;
  Buffer.contents buf
