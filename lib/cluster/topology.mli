(** Aggregation-tree topology: which node feeds which.

    The paper's two-level LFTA/HFTA split generalizes to a tree: edge
    nodes sub-aggregate raw streams, interior nodes merge and re-reduce
    partial aggregates, the root completes the query. A topology file
    declares that tree, one node per line:

    {v
    # gather two racks into one root
    root: rack0 rack1
    rack0: e0 e1
    rack1: e2 e3
    v}

    [name: child1 child2 ...] declares an interior node; a name that
    only ever appears as a child is a leaf (an {e edge} node). Names
    match [[A-Za-z0-9_.-]+]. [#] starts a comment.

    Validation is total and every failure is a one-line message:
    duplicate declarations, a node with two parents, no root or several
    roots, declared nodes unreachable from the root (which also catches
    cycles), fan-in beyond {!max_children}, and a childless root. *)

type t

val max_children : int
(** Fan-in cap per interior node (64). *)

val parse : string -> (t, string) result
(** Parse topology text. Errors cite the offending line. *)

val load : string -> (t, string) result
(** [parse] the file at a path; unreadable files are an [Error], never
    an exception. *)

val root : t -> string

val children : t -> string -> string list
(** [[]] for leaves and unknown names. *)

val parent : t -> string -> string option
(** [None] for the root. *)

val nodes : t -> string list
(** Every node, breadth-first from the root — parents always precede
    their children. *)

val leaves : t -> string list
(** Edge nodes in breadth-first order. *)

val is_leaf : t -> string -> bool

val depth : t -> string -> int
(** Distance from the root (root = 0). Unknown names are [-1]. *)

val height : t -> int
(** Deepest level (a two-level tree has height 1). *)

val size : t -> int

val pp : Format.formatter -> t -> unit
