type config = { n_inputs : int; ordered_idx : int; direction : Order_prop.direction }

type input_state = {
  queue : Value.t array Queue.t;
  mutable bound : Value.t;  (** low bound from puncts/tuples; Null = none yet *)
  mutable eof : bool;
}

module Metrics = Gigascope_obs.Metrics

type t = {
  cfg : config;
  inputs : input_state array;
  (* Forwarded ordering fields: fields other than [ordered_idx] that are
     monotone in every input stream (identical schemas make that one
     check) and whose low bounds the merge therefore re-publishes, so a
     downstream window/epoch operator keyed on such a field is not
     starved of punctuation just because a merge sits in between. The
     array is [(field, direction)]; [fbounds.(i).(k)] is input [i]'s low
     bound for forwarded field [k] (Null = none yet). *)
  forward : (int * Order_prop.direction) array;
  fbounds : Value.t array array;
  mutable high_water : int;
  reorder_lag : Metrics.Histogram.t;
      (** tuples still buffered when one is released: how far the merge had
          to look across inputs to restore order *)
  mutable done_ : bool;
}

let make ?(forward = []) cfg =
  if cfg.n_inputs < 1 then invalid_arg "Merge_op.make: need at least one input";
  let forward =
    Array.of_list (List.filter (fun (f, _) -> f <> cfg.ordered_idx) forward)
  in
  {
    cfg;
    inputs = Array.init cfg.n_inputs (fun _ -> { queue = Queue.create (); bound = Value.Null; eof = false });
    forward;
    fbounds = Array.init cfg.n_inputs (fun _ -> Array.make (Array.length forward) Value.Null);
    high_water = 0;
    reorder_lag = Metrics.Histogram.make ();
    done_ = false;
  }

(* [cmp a b] in stream direction: negative when [a] comes first. *)
let cmp_dir dir a b =
  let c = Value.compare a b in
  match dir with Order_prop.Asc -> c | Desc -> -c

let cmp t a b = cmp_dir t.cfg.direction a b

let buffered t = Array.fold_left (fun acc st -> acc + Queue.length st.queue) 0 t.inputs

(* The earliest value input [i] could still deliver: the head of its queue
   if nonempty, else its punctuation bound; EOF means "never again". *)
let low_of t i =
  let st = t.inputs.(i) in
  if not (Queue.is_empty st.queue) then
    `Known (Queue.peek st.queue).(t.cfg.ordered_idx)
  else if st.eof then `Infinity
  else if st.bound = Value.Null then `Unknown
  else `Known st.bound

(* Same notion for forwarded field [k]: the queue head is the minimum
   among buffered and future tuples (the field is monotone within each
   input — the caller only forwards such fields), falling back to the
   tracked bound when the queue is empty. *)
let flow_of t i k =
  let st = t.inputs.(i) in
  let f, _ = t.forward.(k) in
  if not (Queue.is_empty st.queue) then `Known (Queue.peek st.queue).(f)
  else if st.eof then `Infinity
  else if t.fbounds.(i).(k) = Value.Null then `Unknown
  else `Known t.fbounds.(i).(k)

let advance_forward_tuple t input values =
  let fb = t.fbounds.(input) in
  Array.iteri
    (fun k (f, d) ->
      let v = values.(f) in
      if v <> Value.Null && (fb.(k) = Value.Null || cmp_dir d fb.(k) v < 0) then fb.(k) <- v)
    t.forward

let advance_forward_punct t input bounds =
  let fb = t.fbounds.(input) in
  Array.iteri
    (fun k (f, d) ->
      match List.assoc_opt f bounds with
      | Some v -> if fb.(k) = Value.Null || cmp_dir d fb.(k) v < 0 then fb.(k) <- v
      | None -> ())
    t.forward

(* Emit while some input's head is covered by every other input's bound. *)
let drain t ~emit =
  let progress = ref true in
  while !progress do
    progress := false;
    (* Find the input with the smallest head. *)
    let best = ref None in
    Array.iteri
      (fun i st ->
        if not (Queue.is_empty st.queue) then begin
          let v = (Queue.peek st.queue).(t.cfg.ordered_idx) in
          match !best with
          | Some (_, bv) when cmp t bv v <= 0 -> ()
          | _ -> best := Some (i, v)
        end)
      t.inputs;
    match !best with
    | None -> ()
    | Some (i, v) ->
        let covered = ref true in
        Array.iteri
          (fun j _ ->
            if j <> i then
              match low_of t j with
              | `Infinity -> ()
              | `Unknown -> covered := false
              | `Known lo -> if cmp t lo v < 0 then covered := false)
          t.inputs;
        if !covered then begin
          Metrics.Histogram.observe t.reorder_lag (float_of_int (buffered t - 1));
          ignore (emit (Item.Tuple (Queue.pop t.inputs.(i).queue)));
          progress := true
        end
  done;
  if (not t.done_) && Array.for_all (fun st -> st.eof && Queue.is_empty st.queue) t.inputs
  then begin
    t.done_ <- true;
    emit Item.Eof
  end

let emit_punct t ~emit =
  (* The output's bound for a field is the min over inputs of their lows;
     an Unknown low on any input kills that field's bound (we cannot
     promise anything about the silent input's future). *)
  let combine ~dir low =
    let lows = Array.to_list (Array.init (Array.length t.inputs) low) in
    let known =
      List.filter_map (function `Known v -> Some v | `Infinity | `Unknown -> None) lows
    in
    let any_unknown = List.exists (function `Unknown -> true | _ -> false) lows in
    match known with
    | v :: rest when not any_unknown ->
        Some (List.fold_left (fun acc x -> if cmp_dir dir x acc < 0 then x else acc) v rest)
    | _ -> None
  in
  let bounds =
    let main =
      match combine ~dir:t.cfg.direction (low_of t) with
      | Some v -> [(t.cfg.ordered_idx, v)]
      | None -> []
    in
    let forwarded =
      List.concat
        (List.mapi
           (fun k (f, d) ->
             match combine ~dir:d (fun i -> flow_of t i k) with
             | Some v -> [(f, v)]
             | None -> [])
           (Array.to_list t.forward))
    in
    main @ forwarded
  in
  if bounds <> [] then emit (Item.Punct bounds)

let op t =
  let on_item ~input item ~emit =
    let st = t.inputs.(input) in
    (match item with
    | Item.Tuple values ->
        Queue.push values st.queue;
        let hw = buffered t in
        if hw > t.high_water then t.high_water <- hw;
        let v = values.(t.cfg.ordered_idx) in
        if st.bound = Value.Null || cmp t st.bound v < 0 then st.bound <- v;
        advance_forward_tuple t input values
    | Item.Punct bounds ->
        (match List.assoc_opt t.cfg.ordered_idx bounds with
        | Some v -> if st.bound = Value.Null || cmp t st.bound v < 0 then st.bound <- v
        | None -> ());
        advance_forward_punct t input bounds
    | Item.Flush -> ()
    | Item.Eof -> st.eof <- true
    | (Item.Error _ | Item.Gap _) as ctrl -> emit ctrl);
    drain t ~emit;
    match item with
    | Item.Punct _ -> emit_punct t ~emit
    | Item.Tuple _ | Item.Flush | Item.Eof | Item.Error _ | Item.Gap _ -> ()
  in
  (* Batched path: enqueue the whole run (each tuple advancing the
     input's bound exactly as it would one at a time), then drain once.
     Deferring the drain is output-identical: bounds only grow, so the
     released sequence — smallest covered head first, ties to the lowest
     input — is the same whether it leaves in one run or interleaved
     between pushes. *)
  let on_batch ~input batch ~emit =
    let st = t.inputs.(input) in
    let tuples = Batch.tuples batch in
    let n = Array.length tuples in
    if n > 0 then begin
      for i = 0 to n - 1 do
        let values = tuples.(i) in
        Queue.push values st.queue;
        let v = values.(t.cfg.ordered_idx) in
        if st.bound = Value.Null || cmp t st.bound v < 0 then st.bound <- v;
        advance_forward_tuple t input values
      done;
      let hw = buffered t in
      if hw > t.high_water then t.high_water <- hw
    end;
    match Batch.ctrl batch with
    | Some ctrl -> on_item ~input ctrl ~emit
    | None -> drain t ~emit
  in
  let blocked_input () =
    (* Blocked: some input has data waiting, and another input's silence
       (empty queue, no EOF) is what holds it back. *)
    let someone_waiting = Array.exists (fun st -> not (Queue.is_empty st.queue)) t.inputs in
    if not someone_waiting then None
    else
      let n = Array.length t.inputs in
      let rec find i =
        if i = n then None
        else
          let st = t.inputs.(i) in
          if Queue.is_empty st.queue && not st.eof then Some i else find (i + 1)
      in
      find 0
  in
  {
    Operator.on_item;
    on_batch = Some on_batch;
    blocked_input;
    buffered = (fun () -> buffered t);
    reset = None;
  }

let high_water t = t.high_water

let register_metrics t reg ~prefix =
  Metrics.attach_gauge_fn reg (prefix ^ ".buffered") (fun () -> float_of_int (buffered t));
  Metrics.attach_gauge_fn reg (prefix ^ ".high_water") (fun () -> float_of_int t.high_water);
  Metrics.attach_histogram reg (prefix ^ ".reorder_lag") t.reorder_lag
