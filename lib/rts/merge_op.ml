type config = { n_inputs : int; ordered_idx : int; direction : Order_prop.direction }

type input_state = {
  queue : Value.t array Queue.t;
  mutable bound : Value.t;  (** low bound from puncts/tuples; Null = none yet *)
  mutable eof : bool;
}

module Metrics = Gigascope_obs.Metrics

type t = {
  cfg : config;
  inputs : input_state array;
  mutable high_water : int;
  reorder_lag : Metrics.Histogram.t;
      (** tuples still buffered when one is released: how far the merge had
          to look across inputs to restore order *)
  mutable done_ : bool;
}

let make cfg =
  if cfg.n_inputs < 1 then invalid_arg "Merge_op.make: need at least one input";
  {
    cfg;
    inputs = Array.init cfg.n_inputs (fun _ -> { queue = Queue.create (); bound = Value.Null; eof = false });
    high_water = 0;
    reorder_lag = Metrics.Histogram.make ();
    done_ = false;
  }

(* [cmp a b] in stream direction: negative when [a] comes first. *)
let cmp t a b =
  let c = Value.compare a b in
  match t.cfg.direction with Order_prop.Asc -> c | Desc -> -c

let buffered t = Array.fold_left (fun acc st -> acc + Queue.length st.queue) 0 t.inputs

(* The earliest value input [i] could still deliver: the head of its queue
   if nonempty, else its punctuation bound; EOF means "never again". *)
let low_of t i =
  let st = t.inputs.(i) in
  if not (Queue.is_empty st.queue) then
    `Known (Queue.peek st.queue).(t.cfg.ordered_idx)
  else if st.eof then `Infinity
  else if st.bound = Value.Null then `Unknown
  else `Known st.bound

(* Emit while some input's head is covered by every other input's bound. *)
let drain t ~emit =
  let progress = ref true in
  while !progress do
    progress := false;
    (* Find the input with the smallest head. *)
    let best = ref None in
    Array.iteri
      (fun i st ->
        if not (Queue.is_empty st.queue) then begin
          let v = (Queue.peek st.queue).(t.cfg.ordered_idx) in
          match !best with
          | Some (_, bv) when cmp t bv v <= 0 -> ()
          | _ -> best := Some (i, v)
        end)
      t.inputs;
    match !best with
    | None -> ()
    | Some (i, v) ->
        let covered = ref true in
        Array.iteri
          (fun j _ ->
            if j <> i then
              match low_of t j with
              | `Infinity -> ()
              | `Unknown -> covered := false
              | `Known lo -> if cmp t lo v < 0 then covered := false)
          t.inputs;
        if !covered then begin
          Metrics.Histogram.observe t.reorder_lag (float_of_int (buffered t - 1));
          ignore (emit (Item.Tuple (Queue.pop t.inputs.(i).queue)));
          progress := true
        end
  done;
  if (not t.done_) && Array.for_all (fun st -> st.eof && Queue.is_empty st.queue) t.inputs
  then begin
    t.done_ <- true;
    emit Item.Eof
  end

let emit_punct t ~emit =
  (* The output's bound is the min over inputs of their lows. *)
  let lows =
    Array.to_list (Array.init (Array.length t.inputs) (fun i -> low_of t i))
  in
  let known =
    List.filter_map (function `Known v -> Some v | `Infinity | `Unknown -> None) lows
  in
  let any_unknown = List.exists (function `Unknown -> true | _ -> false) lows in
  match known with
  | v :: rest when not any_unknown ->
      let min_v = List.fold_left (fun acc x -> if cmp t x acc < 0 then x else acc) v rest in
      emit (Item.Punct [(t.cfg.ordered_idx, min_v)])
  | _ -> ()

let op t =
  let on_item ~input item ~emit =
    let st = t.inputs.(input) in
    (match item with
    | Item.Tuple values ->
        Queue.push values st.queue;
        let hw = buffered t in
        if hw > t.high_water then t.high_water <- hw;
        let v = values.(t.cfg.ordered_idx) in
        if st.bound = Value.Null || cmp t st.bound v < 0 then st.bound <- v
    | Item.Punct bounds -> (
        match List.assoc_opt t.cfg.ordered_idx bounds with
        | Some v -> if st.bound = Value.Null || cmp t st.bound v < 0 then st.bound <- v
        | None -> ())
    | Item.Flush -> ()
    | Item.Eof -> st.eof <- true
    | (Item.Error _ | Item.Gap _) as ctrl -> emit ctrl);
    drain t ~emit;
    match item with
    | Item.Punct _ -> emit_punct t ~emit
    | Item.Tuple _ | Item.Flush | Item.Eof | Item.Error _ | Item.Gap _ -> ()
  in
  (* Batched path: enqueue the whole run (each tuple advancing the
     input's bound exactly as it would one at a time), then drain once.
     Deferring the drain is output-identical: bounds only grow, so the
     released sequence — smallest covered head first, ties to the lowest
     input — is the same whether it leaves in one run or interleaved
     between pushes. *)
  let on_batch ~input batch ~emit =
    let st = t.inputs.(input) in
    let tuples = Batch.tuples batch in
    let n = Array.length tuples in
    if n > 0 then begin
      for i = 0 to n - 1 do
        let values = tuples.(i) in
        Queue.push values st.queue;
        let v = values.(t.cfg.ordered_idx) in
        if st.bound = Value.Null || cmp t st.bound v < 0 then st.bound <- v
      done;
      let hw = buffered t in
      if hw > t.high_water then t.high_water <- hw
    end;
    match Batch.ctrl batch with
    | Some ctrl -> on_item ~input ctrl ~emit
    | None -> drain t ~emit
  in
  let blocked_input () =
    (* Blocked: some input has data waiting, and another input's silence
       (empty queue, no EOF) is what holds it back. *)
    let someone_waiting = Array.exists (fun st -> not (Queue.is_empty st.queue)) t.inputs in
    if not someone_waiting then None
    else
      let n = Array.length t.inputs in
      let rec find i =
        if i = n then None
        else
          let st = t.inputs.(i) in
          if Queue.is_empty st.queue && not st.eof then Some i else find (i + 1)
      in
      find 0
  in
  {
    Operator.on_item;
    on_batch = Some on_batch;
    blocked_input;
    buffered = (fun () -> buffered t);
    reset = None;
  }

let high_water t = t.high_water

let register_metrics t reg ~prefix =
  Metrics.attach_gauge_fn reg (prefix ^ ".buffered") (fun () -> float_of_int (buffered t));
  Metrics.attach_gauge_fn reg (prefix ^ ".high_water") (fun () -> float_of_int t.high_water);
  Metrics.attach_histogram reg (prefix ^ ".reorder_lag") t.reorder_lag
