(** Group-by / aggregation over streams (the HFTA form).

    Gigascope turns this blocking operator into a stream operator with
    ordered attributes (Section 2.1): the group key should contain an
    ordered attribute (the {e epoch key}); when a tuple arrives whose epoch
    value is beyond every open group's (minus the band, for
    banded-increasing inputs), the passed groups are closed and flushed to
    the output. Punctuations close groups the same way, and translate to
    output punctuations. Closed groups are emitted in epoch order, so the
    output epoch attribute is imputed monotone. *)

type config = {
  pred : (Value.t array -> bool) option;
      (** the WHERE clause, folded into the operator as generated C would *)
  keys : (Value.t array -> Value.t option) array;
      (** group-key expressions; [None] (a partial function) discards the
          input tuple *)
  epoch_key : int option;  (** index into [keys] of the ordered key *)
  direction : Order_prop.direction;
  band : float;  (** slack before closing (banded-increasing inputs) *)
  aggs : Agg_fn.spec array;
  assemble : keys:Value.t array -> aggs:Value.t array -> Value.t array;
      (** build the output tuple *)
  having : (Value.t array -> bool) option;
      (** filter applied to the {e virtual} tuple [keys @ aggs] before
          assembly — HAVING in GSQL sees keys and aggregates, not the
          projected output *)
  epoch_out : int option;  (** output index of the epoch key, for puncts *)
  punct_in : (int * (Value.t -> Value.t option)) option;
      (** which {e input} field's punctuation bounds apply, and how to map a
          bound into epoch-key space (the group-key expression itself, when
          it is monotone in that field) *)
}

type t

val make : config -> t
val op : t -> Operator.t
val open_groups : t -> int
val flushes : t -> int
(** Number of group closures emitted so far. *)

val register_metrics : t -> Gigascope_obs.Metrics.t -> prefix:string -> unit
(** Attach under [prefix]: the [flushes] counter and a polled
    [open_groups] gauge. *)
