(** Per-domain execution of a partition of the query network.

    The parallel scheduler ({!Scheduler.run_parallel}) keeps sources and
    LFTAs on the calling domain (the packet path) and hands each worker
    domain a list of HFTAs to step. Workers run the same cooperative
    quantum loop as the single-threaded scheduler, but park on a condvar
    signal when all their inputs are empty instead of spinning — pushes
    into their cross-domain input channels wake them. *)

type signal

val make_signal : unit -> signal
val notify : signal -> unit

val wait : ?poke:(unit -> unit) -> signal -> unit
(** Returns immediately if a {!notify} landed since the last {!wait}
    (the hint protocol — no lost wakeups). [poke] runs under the signal
    lock, after the signal is marked parked and before the wait: a
    worker passes [notify] on domain 0's signal so the wedge probe
    ({!probe_wedged}) re-runs whenever a domain goes quiet, and cannot
    observe the worker as awake after the announcement. *)

val mark_exited : signal -> unit
(** Mark the owning domain's loop as returned; the signal counts as
    quiescent for {!probe_wedged} and done for {!all_workers_exited}
    from then on. Also used for partitions that never spawn. *)

type shared
(** State shared by all domains of one parallel run: stop flag, first
    error, per-partition wakeup signals, the cross-domain channels (for
    error shutdown), and the pending cross-domain heartbeat requests. *)

val make_shared : partitions:int -> shared
val add_xchannel : shared -> Xchannel.t -> unit
val signals : shared -> signal array

val abort : shared -> unit
(** Stop all domains: raise the stop flag, close every cross-domain
    channel (unblocking producers), wake every parked domain. *)

val fail : shared -> string -> unit
(** Record the first error, then {!abort}. *)

val error : shared -> string option
val stopped : shared -> bool
val wake_all : shared -> unit

val all_workers_exited : shared -> bool
(** Every worker signal (index [>= 1]) is {!mark_exited}. *)

val probe_wedged : shared -> bool
(** Domain-0 termination detection: true only when the parallel run is
    provably frozen — every worker parked or exited, no pending
    cross-domain heartbeat request, no wakeup pending for domain 0, and
    no {!notify} observed anywhere during the probe. The caller turns
    this into the same wedge error the single-threaded scheduler
    reports, instead of parking forever. *)

val request_heartbeat : shared -> Node.t -> unit
(** Worker-side: walk upstream from [node] to its sources (a pure read of
    the frozen wiring) and queue them for domain 0, which owns source
    state and fires the actual clock punctuation. *)

val take_heartbeats : shared -> Node.t list
(** Domain-0 side: drain and dedupe the queued heartbeat requests. *)

type t

val make :
  id:int -> nodes:Node.t list -> quantum:int -> heartbeats:bool -> sample:int -> t
(** [id] is the partition index ([>= 1]; 0 is the packet-path domain);
    [sample] is the service-time sampling period (1 = every iteration). *)

val run_loop : shared -> t -> unit
(** The worker loop, exposed for tests; normally entered via {!spawn}.
    Steps every node a quantum per iteration; when nothing moves, either
    exits (all nodes exhausted and drained), requests heartbeats for
    blocked inputs, or parks on this partition's signal. *)

val spawn : shared -> t -> unit Domain.t
(** Run {!run_loop} on a fresh domain; an escaped exception becomes the
    run's error ({!fail}), stopping every other domain. *)
