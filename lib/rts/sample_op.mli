(** Bernoulli sampling under analyst control.

    Sampling in Gigascope is "a technique of last resort" (Section 4) that
    must be integrated into the language under the analyst's control
    (Section 5); this operator implements the [SAMPLE p] clause as seeded,
    reproducible Bernoulli sampling. *)

val make :
  ?dropped:Gigascope_obs.Metrics.Counter.t -> rate:float -> seed:int -> unit -> Operator.t
(** [rate] in \[0, 1\]: the probability each tuple survives. Punctuation
    passes through untouched (a sample of an ordered stream keeps its
    ordering properties). [dropped], when given, counts the tuples sampled
    away. *)
