type emit = Item.t -> unit

type t = {
  on_item : input:int -> Item.t -> emit:emit -> unit;
  on_batch : (input:int -> Batch.t -> emit:emit -> unit) option;
  blocked_input : unit -> int option;
  buffered : unit -> int;
  reset : (unit -> unit) option;
}

let apply_batch t ~input batch ~emit =
  match t.on_batch with
  | Some f -> f ~input batch ~emit
  | None -> Batch.iter batch (fun item -> t.on_item ~input item ~emit)

let stateless f ~n_inputs =
  let eofs = Array.make n_inputs false in
  let done_ = ref false in
  let on_item ~input item ~emit =
    match item with
    | Item.Tuple values -> f values ~emit
    | Item.Punct _ | Item.Flush | Item.Error _ | Item.Gap _ -> emit item
    | Item.Eof ->
        eofs.(input) <- true;
        if Array.for_all Fun.id eofs && not !done_ then begin
          done_ := true;
          emit Item.Eof
        end
  in
  let on_batch ~input batch ~emit =
    Array.iter (fun values -> f values ~emit) (Batch.tuples batch);
    match Batch.ctrl batch with Some ctrl -> on_item ~input ctrl ~emit | None -> ()
  in
  {
    on_item;
    on_batch = Some on_batch;
    blocked_input = (fun () -> None);
    buffered = (fun () -> 0);
    reset = Some (fun () -> ());
  }
