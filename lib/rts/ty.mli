(** Static types of GSQL attributes and expressions. *)

type t = Bool | Int | Float | Str | Ip | Sketch

val of_value : Value.t -> t option
(** [None] for [Null]. *)

val value_matches : t -> Value.t -> bool
(** [Null] matches every type. *)

val is_numeric : t -> bool

val of_ddl_name : string -> t option
(** DDL spellings: [bool], [int], [uint], [time], [llong] -> {!Int} family;
    [float]; [string]; [ip]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
