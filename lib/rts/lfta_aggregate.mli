(** The LFTA form of aggregation: a small direct-mapped hash table.

    "An LFTA can perform aggregation, but it uses a small direct-mapped
    hash table. Hash table collisions result in a tuple computed from the
    ejected group being written to the output stream. Because of temporal
    locality, aggregation even with a small hash table is effective in
    early data reduction." (Section 3.)

    The operator therefore emits {e partial} aggregates — possibly several
    per logical group — and relies on a downstream HFTA super-aggregate to
    complete the computation. Epoch advancement flushes the whole table.
    Emitted partials carry no ordering promise except bandedness on the
    epoch key, which {!Order_infer} imputes. *)

type config = {
  table_bits : int;  (** table size is [2 ^ table_bits] slots *)
  pred : (Value.t array -> bool) option;  (** preliminary filtering *)
  keys : (Value.t array -> Value.t option) array;
  epoch_key : int option;
  direction : Order_prop.direction;
  band : float;
  aggs : Agg_fn.spec array;  (** sub-aggregate specs (see {!Agg_fn.sub_kinds}) *)
  assemble : keys:Value.t array -> aggs:Value.t array -> Value.t array;
  punct_in : (int * (Value.t -> Value.t option)) option;
      (** input punctuation field and its translation onto the epoch-key
          domain (as in {!Aggregate}); with [epoch_out] also set, a
          source punctuation flushes the table and re-emits the
          translated bound — the liveness signal the sharded
          reunification merge runs on. [None]: punctuation still
          flushes, but is swallowed (the pre-sharding behavior). *)
  epoch_out : int option;
      (** output position of the epoch key for the translated bound *)
}

type t

val make : config -> t
val op : t -> Operator.t

val evictions : t -> int
(** Collisions that ejected a partial group — the cost of the small
    table. *)

val emitted : t -> int
(** Partial tuples written to the output stream; [emitted/input] is the
    early-data-reduction factor measured in experiment A1. *)

val register_metrics : t -> Gigascope_obs.Metrics.t -> prefix:string -> unit
(** Attach under [prefix]: [evictions] and [emitted] counters (the same
    cells {!evictions}/{!emitted} read), plus polled gauges [occupied],
    [slots] and [eviction_rate] (evictions per emitted partial — the
    "table too small" signal). *)
