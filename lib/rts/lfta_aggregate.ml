type config = {
  table_bits : int;
  pred : (Value.t array -> bool) option;
  keys : (Value.t array -> Value.t option) array;
  epoch_key : int option;
  direction : Order_prop.direction;
  band : float;
  aggs : Agg_fn.spec array;
  assemble : keys:Value.t array -> aggs:Value.t array -> Value.t array;
  (* Punctuation translation, exactly as in {!Aggregate}: [punct_in]
     maps an input-field bound onto the epoch-key domain, [epoch_out] is
     the output position the epoch key lands in. With both set, an input
     punctuation flushes the table (as always) and then emits a
     translated bound on the output — which the sharded reunification
     merge needs to advance without waiting for the next tuple. With
     either [None] (the pre-sharding default) punctuation stays
     swallowed after the flush. *)
  punct_in : (int * (Value.t -> Value.t option)) option;
  epoch_out : int option;
}

type slot = { key : Value.t array; accs : Agg_fn.acc array }

module Metrics = Gigascope_obs.Metrics

type t = {
  cfg : config;
  slots : slot option array;
  mutable occupied : int;
  mutable high_water : Value.t;
  evictions : Metrics.Counter.t;
  emitted : Metrics.Counter.t;
  mutable done_ : bool;
}

let make cfg =
  if cfg.table_bits < 0 || cfg.table_bits > 24 then
    invalid_arg "Lfta_aggregate.make: table_bits out of range";
  {
    cfg;
    slots = Array.make (1 lsl cfg.table_bits) None;
    occupied = 0;
    high_water = Value.Null;
    evictions = Metrics.Counter.make ();
    emitted = Metrics.Counter.make ();
    done_ = false;
  }

let ahead cfg a b =
  match cfg.direction with
  | Order_prop.Asc -> Value.compare a b > 0
  | Order_prop.Desc -> Value.compare a b < 0

let emit_slot t s ~emit =
  let agg_values = Array.map Agg_fn.final s.accs in
  let out = t.cfg.assemble ~keys:s.key ~aggs:agg_values in
  Metrics.Counter.incr t.emitted;
  ignore (emit (Item.Tuple out))

let flush_all t ~emit =
  (* Slot order is deterministic and cheap; the downstream HFTA re-groups,
     so no ordering promise is needed beyond bandedness. *)
  Array.iteri
    (fun i slot ->
      match slot with
      | Some s ->
          t.slots.(i) <- None;
          t.occupied <- t.occupied - 1;
          emit_slot t s ~emit
      | None -> ())
    t.slots

let on_tuple t values ~emit =
  let cfg = t.cfg in
  if (match cfg.pred with Some p -> p values | None -> true) then begin
  let n = Array.length cfg.keys in
  let key = Array.make n Value.Null in
  let ok = ref true in
  Array.iteri
    (fun i kf ->
      match kf values with
      | Some v -> key.(i) <- v
      | None -> ok := false)
    cfg.keys;
  if !ok then begin
    (match cfg.epoch_key with
    | Some ek ->
        let v = key.(ek) in
        if t.high_water = Value.Null || ahead cfg v t.high_water then begin
          (* A fresh epoch: everything in the table belongs to closed
             epochs (module the band, which the HFTA absorbs). *)
          if t.high_water <> Value.Null then flush_all t ~emit;
          t.high_water <- v
        end
    | None -> ());
    let idx = Value.hash_array key land ((1 lsl cfg.table_bits) - 1) in
    let slot =
      match t.slots.(idx) with
      | Some s when Value.equal_array s.key key -> s
      | Some victim ->
          Metrics.Counter.incr t.evictions;
          emit_slot t victim ~emit;
          let s = { key = Array.copy key; accs = Array.map (fun sp -> Agg_fn.init sp.Agg_fn.kind) cfg.aggs } in
          t.slots.(idx) <- Some s;
          s
      | None ->
          let s = { key = Array.copy key; accs = Array.map (fun sp -> Agg_fn.init sp.Agg_fn.kind) cfg.aggs } in
          t.slots.(idx) <- Some s;
          t.occupied <- t.occupied + 1;
          s
    in
    Array.iteri
      (fun i (spec : Agg_fn.spec) ->
        let arg = match spec.Agg_fn.arg with None -> None | Some f -> f values in
        Agg_fn.step slot.accs.(i) arg)
      cfg.aggs
  end
  end

let op t =
  let on_item ~input:_ item ~emit =
    match item with
    | Item.Tuple values -> on_tuple t values ~emit
    | Item.Punct bounds -> (
        (* Partial groups give no per-field guarantee downstream except via
           the HFTA; flush so the bound is honoured, then stay silent (the
           HFTA regenerates bounds from its own epochs) — unless the
           config carries a punctuation translator, in which case the
           source's firm bound maps to an epoch bound on the output. *)
        flush_all t ~emit;
        match (t.cfg.punct_in, t.cfg.epoch_out) with
        | Some (in_field, translate), Some out_field -> (
            match List.assoc_opt in_field bounds with
            | Some v -> (
                match translate v with
                | Some epoch_bound -> emit (Item.Punct [ (out_field, epoch_bound) ])
                | None -> ())
            | None -> ())
        | _ -> ())
    | Item.Flush ->
        flush_all t ~emit;
        emit Item.Flush
    | Item.Eof ->
        if not t.done_ then begin
          t.done_ <- true;
          flush_all t ~emit;
          emit Item.Eof
        end
    | (Item.Error _ | Item.Gap _) as ctrl -> emit ctrl
  in
  (* The paper's cheap path: one dispatch folds a whole run of tuples
     into the direct-mapped table. *)
  let on_batch ~input batch ~emit =
    let tuples = Batch.tuples batch in
    for i = 0 to Array.length tuples - 1 do
      on_tuple t tuples.(i) ~emit
    done;
    match Batch.ctrl batch with Some ctrl -> on_item ~input ctrl ~emit | None -> ()
  in
  {
    Operator.on_item;
    on_batch = Some on_batch;
    blocked_input = (fun () -> None);
    buffered = (fun () -> t.occupied);
  reset = None;
  }

let evictions t = Metrics.Counter.get t.evictions
let emitted t = Metrics.Counter.get t.emitted

let register_metrics t reg ~prefix =
  Metrics.attach_counter reg (prefix ^ ".evictions") t.evictions;
  Metrics.attach_counter reg (prefix ^ ".emitted") t.emitted;
  Metrics.attach_gauge_fn reg (prefix ^ ".occupied") (fun () -> float_of_int t.occupied);
  Metrics.attach_gauge_fn reg (prefix ^ ".slots") (fun () ->
      float_of_int (Array.length t.slots));
  (* collision rate: fraction of input tuples that hit an occupied slot
     holding another group's key -- the paper's "table too small" signal *)
  Metrics.attach_gauge_fn reg (prefix ^ ".eviction_rate") (fun () ->
      let ev = Metrics.Counter.get t.evictions in
      let em = Metrics.Counter.get t.emitted in
      if em = 0 then 0.0 else float_of_int ev /. float_of_int em)
