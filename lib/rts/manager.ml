module Metrics = Gigascope_obs.Metrics

let log_src = Logs.Src.create "gigascope.rts" ~doc:"Gigascope runtime (stream manager) events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  registry : (string, Node.t) Hashtbl.t;
  mutable order : Node.t list;  (* reverse registration order *)
  funcs : Func.registry;
  metrics : Metrics.t;
  default_capacity : int;
  mutable started : bool;
}

let create ?(default_capacity = 4096) () =
  let funcs = Func.create_registry () in
  Builtin_funcs.register_all funcs;
  {
    registry = Hashtbl.create 32;
    order = [];
    funcs;
    metrics = Metrics.create ();
    default_capacity;
    started = false;
  }

let functions t = t.funcs
let metrics t = t.metrics

let key = String.lowercase_ascii

(* Channel names repeat (a self-join reads one upstream twice; an app
   subscribes to the same query twice), so suffix until the prefix is
   free. *)
let unique_chan_prefix reg base =
  if not (Metrics.mem reg (base ^ ".tuples_in")) then base
  else
    let rec go i =
      let p = Printf.sprintf "%s#%d" base i in
      if Metrics.mem reg (p ^ ".tuples_in") then go (i + 1) else p
    in
    go 2

let register_channel_metrics t chan =
  let prefix = unique_chan_prefix t.metrics ("rts.chan." ^ Channel.name chan) in
  Channel.register_metrics chan t.metrics ~prefix

let register_xchannel_metrics t xc =
  let prefix = unique_chan_prefix t.metrics ("rts.xchannel." ^ Xchannel.name xc) in
  Xchannel.register_metrics xc t.metrics ~prefix

let register t node =
  let k = key (Node.name node) in
  if Hashtbl.mem t.registry k then
    Error (Printf.sprintf "stream manager: query name %s already registered" (Node.name node))
  else begin
    Hashtbl.replace t.registry k node;
    t.order <- node :: t.order;
    Node.register_metrics node t.metrics;
    Metrics.Counter.incr (Metrics.counter t.metrics "rts.manager.nodes_registered");
    Log.debug (fun m -> m "registered node %s" (Node.name node));
    Ok node
  end

let find t name = Hashtbl.find_opt t.registry (key name)
let nodes t = List.rev t.order

let add_source t ~name ~schema source =
  if t.started then
    Error "stream manager: sources are bound into the RTS; stop and restart to change them"
  else begin
    Metrics.Counter.incr (Metrics.counter t.metrics "rts.manager.sources");
    register t (Node.make_source ~name ~schema source)
  end

let add_query_node_sized t ~capacity ~name ~kind ~schema ~inputs ~op =
  let check_batch () =
    match kind with
    | Node.Lfta when t.started ->
        Error
          "stream manager: LFTAs are linked into the RTS and must be submitted in a batch; \
           restart to change them"
    | Node.Source -> Error "stream manager: use add_source for sources"
    | Node.Lfta | Node.Hfta -> Ok ()
  in
  let resolve_inputs () =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | input_name :: rest -> (
          match find t input_name with
          | Some up -> go (up :: acc) rest
          | None -> Error (Printf.sprintf "stream manager: unknown stream %s" input_name))
    in
    go [] inputs
  in
  let check_lfta_inputs ups =
    match kind with
    | Node.Lfta ->
        if List.for_all (fun up -> Node.kind up = Node.Source) ups then Ok ()
        else Error "stream manager: LFTAs accept only Protocol (source) input"
    | Node.Hfta | Node.Source -> Ok ()
  in
  match check_batch () with
  | Error _ as e -> e
  | Ok () -> (
      match resolve_inputs () with
      | Error _ as e -> e
      | Ok ups -> (
          match check_lfta_inputs ups with
          | Error _ as e -> e
          | Ok () -> (
              let node = Node.make_op ~name ~kind ~schema ~op in
              match register t node with
              | Error _ as e -> e
              | Ok node ->
                  (* Auto-sizing only ever grows a channel past the
                     default: a certified upstream burst larger than the
                     ring would otherwise drop tuples mid-flush. *)
                  let cap =
                    match capacity with
                    | Some c -> max c t.default_capacity
                    | None -> t.default_capacity
                  in
                  List.iter
                    (fun up -> Node.connect ~downstream:node ~upstream:up ~capacity:cap)
                    ups;
                  Array.iter (fun (_, chan) -> register_channel_metrics t chan) (Node.inputs node);
                  Ok node)))

let add_query_node t ~name ~kind ~schema ~inputs ~op =
  add_query_node_sized t ~capacity:None ~name ~kind ~schema ~inputs ~op

let subscribe t ?capacity name =
  match find t name with
  | None -> Error (Printf.sprintf "stream manager: unknown stream %s" name)
  | Some node ->
      let capacity = Option.value capacity ~default:t.default_capacity in
      let chan = Channel.create ~capacity ~name:(Printf.sprintf "%s->app" name) () in
      Node.add_subscriber node (Node.Chan chan);
      register_channel_metrics t chan;
      Log.debug (fun m -> m "application subscribed to %s (capacity %d)" name capacity);
      Ok chan

let on_item t name f =
  match find t name with
  | None -> Error (Printf.sprintf "stream manager: unknown stream %s" name)
  | Some node ->
      Node.add_subscriber node (Node.Callback f);
      Log.debug (fun m -> m "callback subscribed to %s" name);
      Ok ()

let on_batch t name f =
  match find t name with
  | None -> Error (Printf.sprintf "stream manager: unknown stream %s" name)
  | Some node ->
      Node.add_subscriber node (Node.Batch_callback f);
      Log.debug (fun m -> m "batch callback subscribed to %s" name);
      Ok ()

let start t =
  if not t.started then Log.info (fun m -> m "manager started: LFTA set frozen");
  t.started <- true

let started t = t.started

let restart t =
  if t.started then Log.info (fun m -> m "manager restarted: LFTA set unfrozen");
  t.started <- false

let flush t name =
  match find t name with
  | None -> Error (Printf.sprintf "stream manager: unknown stream %s" name)
  | Some node ->
      Log.debug (fun m -> m "flushing %s" name);
      (* Flushing "the query" means the whole chain: sub-aggregating LFTAs
         hold the open groups, so flush upstream first and drain each hop
         before flushing the next. *)
      let rec flush_chain node =
        Array.iter
          (fun (up, _) -> if Node.kind up <> Node.Source then flush_chain up)
          (Node.inputs node);
        ignore (Node.step_inputs node ~quantum:1_000_000);
        Node.inject_flush node
      in
      flush_chain node;
      Ok ()

let total_drops t = List.fold_left (fun acc n -> acc + Node.input_drops n) 0 (nodes t)

let kind_string node =
  match Node.kind node with
  | Node.Source -> "source"
  | Node.Lfta -> "lfta"
  | Node.Hfta -> "hfta"

let stats_report t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %-8s %10s %10s %8s %9s\n" "node" "kind" "tuples-in" "tuples-out"
       "drops" "buffered");
  List.iter
    (fun node ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %-8s %10d %10d %8d %9d\n" (Node.name node) (kind_string node)
           (Node.tuples_in node) (Node.tuples_out node) (Node.input_drops node)
           (Node.buffered node)))
    (nodes t);
  Buffer.contents buf

let trace_report t =
  let snap = Metrics.snapshot t.metrics in
  let factor =
    match Metrics.find snap "rts.scheduler.service_sample" with
    | Some (Metrics.Gauge f) when f >= 1.0 -> f
    | _ -> 1.0
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %-8s %10s %10s %8s %11s %10s %9s\n" "node" "kind" "tuples-in"
       "tuples-out" "drops" "timed-steps" "cum-ms" "ns/tuple");
  List.iter
    (fun node ->
      let name = Node.name node in
      let hist = Metrics.find snap (Printf.sprintf "rts.node.%s.service_ns" name) in
      let steps, cum_ns =
        match hist with
        | Some (Metrics.Histogram h) -> (h.Metrics.h_count, h.Metrics.h_total *. factor)
        | _ -> (0, 0.0)
      in
      let tuples =
        match Node.kind node with
        | Node.Source -> Node.tuples_out node
        | Node.Lfta | Node.Hfta -> Node.tuples_in node
      in
      Buffer.add_string buf
        (Printf.sprintf "%-24s %-8s %10d %10d %8d %11d %10.2f %9.0f\n" name (kind_string node)
           (Node.tuples_in node) (Node.tuples_out node) (Node.input_drops node) steps
           (cum_ns /. 1e6)
           (cum_ns /. float_of_int (max 1 tuples))))
    (nodes t);
  if factor > 1.0 then
    Buffer.add_string buf
      (Printf.sprintf
         "(service times sampled every %.0f rounds; cum-ms and ns/tuple are scaled estimates)\n"
         factor);
  Buffer.contents buf
