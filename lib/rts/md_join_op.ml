type config = {
  base : Value.t array array;
  theta : Value.t array -> Value.t array -> bool;
  aggs : Agg_fn.spec array;
  epoch_field : int;
  direction : Order_prop.direction;
  band : float;
  assemble : base:Value.t array -> epoch:Value.t -> aggs:Value.t array -> Value.t array;
}

type t = {
  cfg : config;
  accs : Agg_fn.acc array array;  (** per base row, per aggregate *)
  mutable epoch : Value.t;  (** open epoch value; Null before any tuple *)
  mutable epochs_emitted : int;
  mutable done_ : bool;
}

let fresh_accs cfg =
  Array.map (fun _ -> Array.map (fun (s : Agg_fn.spec) -> Agg_fn.init s.Agg_fn.kind) cfg.aggs) cfg.base

let make cfg =
  if Array.length cfg.base = 0 then invalid_arg "Md_join_op.make: empty base relation";
  { cfg; accs = fresh_accs cfg; epoch = Value.Null; epochs_emitted = 0; done_ = false }

let ahead cfg a b =
  match cfg.direction with
  | Order_prop.Asc -> Value.compare a b > 0
  | Order_prop.Desc -> Value.compare a b < 0

(* The epoch a value belongs to, honouring the band: values within [band]
   of the frontier stay in the open epoch. *)
let band_allows cfg ~frontier v =
  if cfg.band = 0.0 then not (ahead cfg v frontier)
  else
    match (Value.to_float v, Value.to_float frontier) with
    | Some fv, Some ff -> (
        match cfg.direction with
        | Order_prop.Asc -> fv <= ff +. cfg.band
        | Order_prop.Desc -> fv >= ff -. cfg.band)
    | _ -> not (ahead cfg v frontier)

let emit_epoch t ~emit =
  t.epochs_emitted <- t.epochs_emitted + 1;
  Array.iteri
    (fun i base_row ->
      let agg_values = Array.map Agg_fn.final t.accs.(i) in
      ignore (emit (Item.Tuple (t.cfg.assemble ~base:base_row ~epoch:t.epoch ~aggs:agg_values)));
      Array.iteri
        (fun j (s : Agg_fn.spec) -> t.accs.(i).(j) <- Agg_fn.init s.Agg_fn.kind)
        t.cfg.aggs)
    t.cfg.base

let on_tuple t values ~emit =
  let cfg = t.cfg in
  if cfg.epoch_field >= 0 && cfg.epoch_field < Array.length values then begin
    let v = values.(cfg.epoch_field) in
    if t.epoch = Value.Null then t.epoch <- v
    else if not (band_allows cfg ~frontier:t.epoch v) then begin
      emit_epoch t ~emit;
      t.epoch <- v
    end
    else if ahead cfg v t.epoch then t.epoch <- v
  end;
  Array.iteri
    (fun i base_row ->
      if cfg.theta base_row values then
        Array.iteri
          (fun j (spec : Agg_fn.spec) ->
            let arg = match spec.Agg_fn.arg with None -> None | Some f -> f values in
            Agg_fn.step t.accs.(i).(j) arg)
          cfg.aggs)
    cfg.base

let op t =
  let on_item ~input:_ item ~emit =
    match item with
    | Item.Tuple values -> on_tuple t values ~emit
    | Item.Punct bounds -> (
        (* a bound past the open epoch closes it *)
        match List.assoc_opt t.cfg.epoch_field bounds with
        | Some v when t.epoch <> Value.Null && not (band_allows t.cfg ~frontier:t.epoch v) ->
            emit_epoch t ~emit;
            t.epoch <- v
        | _ -> ())
    | Item.Flush ->
        if t.epoch <> Value.Null then emit_epoch t ~emit;
        emit Item.Flush
    | Item.Eof ->
        if not t.done_ then begin
          t.done_ <- true;
          if t.epoch <> Value.Null then emit_epoch t ~emit;
          emit Item.Eof
        end
    | (Item.Error _ | Item.Gap _) as ctrl -> emit ctrl
  in
  let on_batch ~input batch ~emit =
    let tuples = Batch.tuples batch in
    for i = 0 to Array.length tuples - 1 do
      on_tuple t tuples.(i) ~emit
    done;
    match Batch.ctrl batch with Some ctrl -> on_item ~input ctrl ~emit | None -> ()
  in
  {
    Operator.on_item;
    on_batch = Some on_batch;
    blocked_input = (fun () -> None);
    buffered = (fun () -> Array.length t.cfg.base);
  reset = None;
  }

let epochs_emitted t = t.epochs_emitted
