(** Selection / projection — the workhorse of LFTAs.

    Applies a predicate, then computes output fields from the input tuple.
    Projection closures may be partial ([None] discards the tuple), which
    is how partial user functions behave in the SELECT list. *)

val make :
  ?rejected:Gigascope_obs.Metrics.Counter.t ->
  ?pred:(Value.t array -> bool) ->
  project:(Value.t array -> Value.t array option) ->
  punct_map:(int * int) list ->
  unit ->
  Operator.t
(** [punct_map] maps input field indices to output field indices for the
    ordered attributes that survive projection; punctuation bounds on other
    fields are dropped. Bounds are forwarded only when their field maps —
    a projection that drops the timestamp also drops its guarantees.

    [rejected], when given, counts tuples discarded by the predicate or by
    a partial projection (the complement of the node's [tuples_out]). *)
