(** Supervision of crashing query nodes.

    The paper runs each HFTA as its own process so an expensive operator
    dying cannot take down packet capture; here the same stance is a
    policy over in-process nodes. When an operator (or source pull)
    raises mid-step, the owning node asks its supervisor for a verdict:

    - {b fail_fast} (default): escalate — the whole run stops with an
      [Error] naming the node. Matches pre-supervision behaviour, minus
      the raw backtrace.
    - {b isolate}: poison only the crashing node's subtree. The node
      emits [Item.Error] then [Item.Eof], so downstream operators
      terminate normally with explicitly partial results, and keeps
      draining (discarding) its inputs so upstream never wedges.
    - {b restart}: operators that declare a [reset] (stateless ones)
      are restarted in place, up to [restart_budget] times per node;
      an [Item.Gap] marks the items lost to the crash. Stateful or
      over-budget nodes degrade to poisoning.

    All verdicts are observable: [rts.supervisor.restarts],
    [rts.supervisor.poisoned], [rts.supervisor.escalations]. *)

type policy = Fail_fast | Isolate | Restart

val policy_of_string : string -> (policy, string) result
val policy_to_string : policy -> string

exception Crashed of string * string
(** [(node, message)]: a [Fail_fast] escalation, caught at the scheduler
    boundary and turned into the run's [Error] result. *)

type verdict = Retry | Poison | Escalate

type t

val create : ?policy:policy -> ?restart_budget:int -> unit -> t
(** [restart_budget] (default 3) caps restarts {e per node}. *)

val policy : t -> policy

val register_metrics : t -> Gigascope_obs.Metrics.t -> unit
(** Attach [rts.supervisor.*] counters. *)

val on_crash : t -> node:string -> restartable:bool -> exn -> verdict * string
(** Record a crash and rule on it. Thread-safe (nodes on worker domains
    report here too). Returns the verdict plus a printable message. *)

val restarts : t -> int
val poisoned : t -> string list
