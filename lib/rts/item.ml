type t =
  | Tuple of Value.t array
  | Punct of (int * Value.t) list
  | Flush
  | Eof
  | Error of string
  | Gap of int

let is_tuple = function
  | Tuple _ -> true
  | Punct _ | Flush | Eof | Error _ | Gap _ -> false

let punct_bound t i =
  match t with
  | Punct bounds -> List.assoc_opt i bounds
  | Tuple _ | Flush | Eof | Error _ | Gap _ -> None

let pp fmt = function
  | Tuple vs ->
      Format.fprintf fmt "tuple(";
      Array.iteri
        (fun i v ->
          if i > 0 then Format.fprintf fmt ", ";
          Value.pp fmt v)
        vs;
      Format.fprintf fmt ")"
  | Punct bounds ->
      Format.fprintf fmt "punct(";
      List.iteri
        (fun i (idx, v) ->
          if i > 0 then Format.fprintf fmt ", ";
          Format.fprintf fmt "#%d>=%a" idx Value.pp v)
        bounds;
      Format.fprintf fmt ")"
  | Flush -> Format.fprintf fmt "flush"
  | Eof -> Format.fprintf fmt "eof"
  | Error msg -> Format.fprintf fmt "error(%s)" msg
  | Gap n -> if n < 0 then Format.fprintf fmt "gap(?)" else Format.fprintf fmt "gap(%d)" n
