(* A batch is a run of consecutive tuples plus at most one trailing
   control item. Control items seal the batch that carries them, so
   punctuation, Flush and Eof keep their exact stream position: every
   item order observable through a channel is independent of the batch
   size (the property the differential tests enforce).

   Latency observability rides along as an optional parallel column of
   ingest stamps (ns, 0 = unstamped). Unstamped batches carry [None]
   and cost nothing; the column never participates in the item order,
   so the byte-identity invariant is untouched. *)

type t = {
  tuples : Value.t array array;
  stamps : int array option;
  ctrl : Item.t option;
}

let make ?stamps tuples ctrl =
  (match ctrl with
  | Some (Item.Tuple _) -> invalid_arg "Batch.make: control position holds a tuple"
  | Some (Item.Punct _ | Item.Flush | Item.Eof | Item.Error _ | Item.Gap _) | None -> ());
  (match stamps with
  | Some st when Array.length st <> Array.length tuples ->
      invalid_arg "Batch.make: stamp column length differs from tuple count"
  | Some _ | None -> ());
  { tuples; stamps; ctrl }

let of_item = function
  | Item.Tuple values -> { tuples = [| values |]; stamps = None; ctrl = None }
  | (Item.Punct _ | Item.Flush | Item.Eof | Item.Error _ | Item.Gap _) as ctrl ->
      { tuples = [||]; stamps = None; ctrl = Some ctrl }

(* Rebuild a batch from an item list in batch shape (tuples first, then
   at most one control item) — the shape of any partially consumed
   batch remainder, which is the only caller. Stamps are dropped: they
   are a sampled, best-effort measurement and the item-level remainder
   path is not worth threading them through. *)
let of_items items =
  let rec split acc = function
    | Item.Tuple values :: rest -> split (values :: acc) rest
    | [ ((Item.Punct _ | Item.Flush | Item.Eof | Item.Error _ | Item.Gap _) as ctrl) ] ->
        (List.rev acc, Some ctrl)
    | [] -> (List.rev acc, None)
    | (Item.Punct _ | Item.Flush | Item.Eof | Item.Error _ | Item.Gap _) :: _ ->
        invalid_arg "Batch.of_items: control item before the end"
  in
  let tuples, ctrl = split [] items in
  { tuples = Array.of_list tuples; stamps = None; ctrl }

let tuples t = t.tuples
let stamps t = t.stamps
let ctrl t = t.ctrl
let n_tuples t = Array.length t.tuples
let items t = Array.length t.tuples + match t.ctrl with Some _ -> 1 | None -> 0
let is_empty t = t.ctrl = None && Array.length t.tuples = 0

let iter t f =
  Array.iter (fun values -> f (Item.Tuple values)) t.tuples;
  match t.ctrl with Some ctrl -> f ctrl | None -> ()

let to_items t =
  let tail = match t.ctrl with Some ctrl -> [ ctrl ] | None -> [] in
  Array.fold_right (fun values acc -> Item.Tuple values :: acc) t.tuples tail

let pp fmt t =
  Format.fprintf fmt "@[<h>batch[%d tuples%s%s]@]" (n_tuples t)
    (match t.stamps with Some _ -> "; stamped" | None -> "")
    (match t.ctrl with
    | Some c -> Format.asprintf "; %a" Item.pp c
    | None -> "")
