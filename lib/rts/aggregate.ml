type config = {
  pred : (Value.t array -> bool) option;
  keys : (Value.t array -> Value.t option) array;
  epoch_key : int option;
  direction : Order_prop.direction;
  band : float;
  aggs : Agg_fn.spec array;
  assemble : keys:Value.t array -> aggs:Value.t array -> Value.t array;
  having : (Value.t array -> bool) option;
  epoch_out : int option;
  punct_in : (int * (Value.t -> Value.t option)) option;
}

type group = { key : Value.t array; accs : Agg_fn.acc array }

module Metrics = Gigascope_obs.Metrics

type t = {
  cfg : config;
  groups : group Group_tbl.t;
  mutable high_water : Value.t;  (** extremum of epoch values seen; Null before any *)
  flushes : Metrics.Counter.t;
  mutable done_ : bool;
}

(* [ahead a b] : does epoch value [a] come after [b] in stream direction? *)
let ahead cfg a b =
  match cfg.direction with
  | Order_prop.Asc -> Value.compare a b > 0
  | Order_prop.Desc -> Value.compare a b < 0

(* The closing threshold implied by a frontier value: groups strictly
   behind [frontier - band] can never receive another tuple. *)
let behind_threshold cfg frontier =
  if cfg.band = 0.0 then frontier
  else
    match Value.to_float frontier with
    | None -> frontier
    | Some f ->
        let shifted =
          match cfg.direction with Order_prop.Asc -> f -. cfg.band | Desc -> f +. cfg.band
        in
        (match frontier with
        | Value.Int _ ->
            Value.Int
              (match cfg.direction with
              | Order_prop.Asc -> int_of_float (Float.floor shifted)
              | Desc -> int_of_float (Float.ceil shifted))
        | _ -> Value.Float shifted)

let step_group g cfg values =
  Array.iteri
    (fun i (spec : Agg_fn.spec) ->
      let arg = match spec.Agg_fn.arg with None -> None | Some f -> f values in
      Agg_fn.step g.accs.(i) arg)
    cfg.aggs

let emit_group t g ~emit =
  let agg_values = Array.map Agg_fn.final g.accs in
  let keep =
    match t.cfg.having with
    | None -> true
    | Some h -> h (Array.append g.key agg_values)
  in
  if keep then begin
    Metrics.Counter.incr t.flushes;
    ignore (emit (Item.Tuple (t.cfg.assemble ~keys:g.key ~aggs:agg_values)))
  end

(* Close and emit all groups whose epoch key is strictly behind
   [threshold]; [threshold = None] closes everything. Emission is in epoch
   order so the output epoch attribute stays monotone. *)
let flush_behind t ?threshold ~emit () =
  match t.cfg.epoch_key with
  | None -> (
      match threshold with
      | Some _ -> () (* no epoch key: only a full flush makes sense *)
      | None ->
          let all = Group_tbl.fold (fun _ g acc -> g :: acc) t.groups [] in
          Group_tbl.clear t.groups;
          List.iter (fun g -> emit_group t g ~emit) all)
  | Some ek ->
      let candidates =
        Group_tbl.fold
          (fun _ g acc ->
            let close =
              match threshold with
              | None -> true
              | Some thr -> ahead t.cfg thr g.key.(ek)
            in
            if close then g :: acc else acc)
          t.groups []
      in
      let sorted =
        List.sort
          (fun a b ->
            let c = Value.compare a.key.(ek) b.key.(ek) in
            let c = if t.cfg.direction = Order_prop.Desc then -c else c in
            if c <> 0 then c else compare a.key b.key)
          candidates
      in
      List.iter
        (fun g ->
          Group_tbl.remove t.groups g.key;
          emit_group t g ~emit)
        sorted

let make cfg =
  {
    cfg;
    groups = Group_tbl.create 64;
    high_water = Value.Null;
    flushes = Metrics.Counter.make ();
    done_ = false;
  }

let on_tuple t values ~emit =
  let cfg = t.cfg in
  if (match cfg.pred with Some p -> p values | None -> true) then begin
  let n = Array.length cfg.keys in
  let key = Array.make n Value.Null in
  let ok = ref true in
  Array.iteri
    (fun i kf ->
      match kf values with
      | Some v -> key.(i) <- v
      | None -> ok := false)
    cfg.keys;
  if !ok then begin
    (match cfg.epoch_key with
    | Some ek ->
        let v = key.(ek) in
        let advanced = t.high_water = Value.Null || ahead cfg v t.high_water in
        if advanced then begin
          t.high_water <- v;
          flush_behind t ~threshold:(behind_threshold cfg v) ~emit ()
        end
    | None -> ());
    let group =
      match Group_tbl.find_opt t.groups key with
      | Some g -> g
      | None ->
          let g = { key = Array.copy key; accs = Array.map (fun s -> Agg_fn.init s.Agg_fn.kind) cfg.aggs } in
          Group_tbl.replace t.groups key g;
          g
    in
    step_group group cfg values
  end
  end

let on_punct t bounds ~emit =
  match (t.cfg.punct_in, t.cfg.epoch_key) with
  | Some (in_field, translate), Some _ -> (
      match List.assoc_opt in_field bounds with
      | Some bound -> (
          match translate bound with
          | Some epoch_bound -> (
              flush_behind t ~threshold:epoch_bound ~emit ();
              match t.cfg.epoch_out with
              | Some out_idx -> emit (Item.Punct [(out_idx, epoch_bound)])
              | None -> ())
          | None -> ())
      | None -> ())
  | _ -> ()

let op t =
  let on_item ~input:_ item ~emit =
    match item with
    | Item.Tuple values -> on_tuple t values ~emit
    | Item.Punct bounds -> on_punct t bounds ~emit
    | Item.Flush ->
        flush_behind t ~emit ();
        emit Item.Flush
    | Item.Eof ->
        if not t.done_ then begin
          t.done_ <- true;
          flush_behind t ~emit ();
          emit Item.Eof
        end
    | (Item.Error _ | Item.Gap _) as ctrl -> emit ctrl
  in
  let on_batch ~input batch ~emit =
    let tuples = Batch.tuples batch in
    for i = 0 to Array.length tuples - 1 do
      on_tuple t tuples.(i) ~emit
    done;
    match Batch.ctrl batch with Some ctrl -> on_item ~input ctrl ~emit | None -> ()
  in
  {
    Operator.on_item;
    on_batch = Some on_batch;
    blocked_input = (fun () -> None);
    buffered = (fun () -> Group_tbl.length t.groups);
  reset = None;
  }

let open_groups t = Group_tbl.length t.groups
let flushes t = Metrics.Counter.get t.flushes

let register_metrics t reg ~prefix =
  Metrics.attach_counter reg (prefix ^ ".flushes") t.flushes;
  Metrics.attach_gauge_fn reg (prefix ^ ".open_groups") (fun () ->
      float_of_int (Group_tbl.length t.groups))
