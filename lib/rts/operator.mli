(** The operator abstraction query nodes execute.

    An operator reacts to items arriving on numbered inputs and emits items
    downstream through the provided [emit]. The contract:
    - exactly one [Item.Eof] must be emitted, after the operator has seen
      [Eof] on all its inputs and flushed its state;
    - [Item.Punct] must be translated (not blindly forwarded) so emitted
      bounds refer to {e output} field indices and are actually honoured by
      future output tuples;
    - [blocked_input] names an input whose silence currently prevents
      progress (merge/join), which is what triggers on-demand heartbeat
      requests upstream. *)

type emit = Item.t -> unit

type t = {
  on_item : input:int -> Item.t -> emit:emit -> unit;
  on_batch : (input:int -> Batch.t -> emit:emit -> unit) option;
      (** Vectorized path: consume a whole batch in one call. Must emit
          exactly what feeding the batch's items to [on_item] one at a
          time would emit — {!apply_batch} falls back to doing just that
          when absent, so exotic operators keep working untouched. *)
  blocked_input : unit -> int option;
  buffered : unit -> int;  (** items of internal state, for measurement *)
  reset : (unit -> unit) option;
      (** Restartable operators expose a state reset the supervisor may
          call to restart them in place after a crash ([restart] policy).
          [None] marks the operator as stateful-unrestartable: a crash
          poisons it instead. *)
}

val apply_batch : t -> input:int -> Batch.t -> emit:emit -> unit
(** Dispatch a batch through [on_batch], or iterate [on_item] over its
    items when the operator has no batch implementation. *)

val stateless : (Value.t array -> emit:emit -> unit) -> n_inputs:int -> t
(** Wrap a per-tuple function into an operator that forwards punctuation
    unchanged (valid only when input and output schemas share field
    positions for ordered attributes) and handles EOF counting over
    [n_inputs]. Processes batches in a tight per-tuple loop. *)
