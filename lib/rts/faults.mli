(** Deterministic fault injection.

    A seed-driven registry of injection points threaded through the
    runtime (operator steps, cross-domain channel pushes, socket
    writes). A fault {e plan} is parsed from a compact spec string —
    [GIGASCOPE_FAULTS] or [gsq run --inject] — and installed globally;
    each instrumented point then consults the plan on every hit.

    Spec grammar (comma-separated clauses):
    {v
      seed=N                global seed for probabilistic clauses
      crash=NODE:K          raise inside NODE's operator on its Kth step
      stall=CHAN:K[:MS]     sleep MS (default 20) in CHAN's Kth cross push
      xclose=CHAN:K         close CHAN out from under its Kth push (race)
      torn=K | torn~P       truncate the Kth outgoing frame (or with prob P)
      drop=K | drop~P       silently drop an outgoing frame
      delay=K:MS | delay~P:MS   delay an outgoing frame by MS
      disconnect=K          hard-close the connection before the Kth send
    v}

    [=K] clauses fire exactly once, on the Kth hit of that point — the
    per-point hit counter is shared across threads, so "the 3rd step of
    node n" means the same event in every run. [~P] clauses fire with
    probability P from a generator seeded by (seed, point identity), so
    they too replay identically for a given seed regardless of thread
    interleaving elsewhere. *)

exception Injected of string
(** What an armed {!crash_point} raises. Distinguishable from organic
    operator failures in supervisor logs. *)

type mode = Nth of int | Prob of float

type clause = { kind : string; target : string; mode : mode; ms : float }

type t = { seed : int; clauses : clause list }

val parse : string -> (t, string) result
val to_string : t -> string
(** Round-trips through {!parse} (clause order preserved). *)

val install : t -> unit
(** Make [t] the active plan, resetting all hit counters. *)

val clear : unit -> unit
val active : unit -> bool
val current : unit -> t option

val install_env : unit -> (bool, string) result
(** Install from [GIGASCOPE_FAULTS] if set. [Ok true] when a plan was
    installed, [Ok false] when the variable is unset/empty. *)

(** {2 Injection points} — all are no-ops when no plan is active. *)

val crash_point : node:string -> unit
(** Raises {!Injected} when an armed [crash] clause fires for [node]. *)

val stall_point : chan:string -> unit
(** Sleeps when an armed [stall] clause fires for [chan]. *)

val xclose_point : chan:string -> (unit -> unit) -> unit
(** Invokes the supplied closer when an armed [xclose] clause fires —
    simulating a consumer tearing the channel down mid-push. *)

type send_action = Pass | Torn of int | Drop | Delay of float | Disconnect

val send_point : peer:string -> len:int -> send_action
(** Verdict for one outgoing frame of [len] bytes; at most one clause
    fires per frame (disconnect > torn > drop > delay). *)
