module Ring = Gigascope_util.Ring
module Metrics = Gigascope_obs.Metrics

(* A channel starts Local (plain bounded ring, single-domain cooperative
   scheduling). run_parallel promotes edges that cross a domain boundary
   to Cross before any domain spawns; Node.step_inputs and the operators
   never notice the difference.

   The transport unit is a Batch: one ring slot (or one lock acquire on
   a promoted channel) moves a whole run of tuples. The item-level
   push/pop/peek API is kept as singleton-batch wrappers, with [cur]
   holding the consumer-side remainder of a partially consumed batch —
   only the consumer touches it, so it is as single-threaded as the ring
   itself. *)
type impl = Local of Batch.t Ring.t | Cross of Xchannel.t

type t = {
  name : string;
  capacity : int;
  mutable impl : impl;
  mutable cur : Item.t list;  (* consumer-side remainder of a popped batch *)
  tuples_in : Metrics.Counter.t;
  dropped : Metrics.Counter.t;
  occupancy : Metrics.Histogram.t;  (* items per pushed batch *)
}

let create ?(capacity = 4096) ~name () =
  {
    name;
    capacity;
    impl = Local (Ring.create ~capacity);
    cur = [];
    tuples_in = Metrics.Counter.make ();
    dropped = Metrics.Counter.make ();
    occupancy = Metrics.Histogram.make ();
  }

let name t = t.name
let capacity t = t.capacity

let push_batch t batch =
  let nt = Batch.n_tuples batch in
  match t.impl with
  | Local ring ->
      if Ring.push ring batch then begin
        if nt > 0 then Metrics.Counter.add t.tuples_in nt;
        Metrics.Histogram.observe t.occupancy (float_of_int (Batch.items batch));
        true
      end
      else begin
        (* Full ring: the whole batch is rejected and every tuple it
           carried counts as a drop (not one drop per batch — the
           paper's headline metric must not silently improve under
           batching). A non-Eof control item counts too, as before. An
           Eof must still get through or shutdown wedges: force a
           control-only Eof batch in, evicting a buffered batch exactly
           as the item-at-a-time path evicted a buffered item. *)
        match Batch.ctrl batch with
        | Some ((Item.Eof | Item.Error _) as ctrl) ->
            if nt > 0 then Metrics.Counter.add t.dropped nt;
            Ring.push_force ring (Batch.of_item ctrl);
            Metrics.Histogram.observe t.occupancy 1.0;
            true
        | Some (Item.Punct _ | Item.Flush | Item.Gap _) ->
            Metrics.Counter.add t.dropped (nt + 1);
            false
        | Some (Item.Tuple _) | None ->
            if nt > 0 then Metrics.Counter.add t.dropped nt;
            false
      end
  | Cross xc ->
      (* Blocking push: cross-domain edges apply backpressure instead of
         dropping; a refusal means the channel was closed by an error
         shutdown. The channel's own cells keep counting so [rts.chan.*]
         and drop totals stay live after promotion. *)
      let ok = Xchannel.push_batch xc batch in
      if ok then begin
        if nt > 0 then Metrics.Counter.add t.tuples_in nt;
        Metrics.Histogram.observe t.occupancy (float_of_int (Batch.items batch))
      end
      else begin
        let lost =
          nt
          + (match Batch.ctrl batch with
            | Some (Item.Punct _ | Item.Flush | Item.Gap _) -> 1
            | Some (Item.Eof | Item.Error _) | Some (Item.Tuple _) | None -> 0)
        in
        if lost > 0 then Metrics.Counter.add t.dropped lost
      end;
      ok

let push t item = push_batch t (Batch.of_item item)

let impl_pop_batch t =
  match t.impl with Local ring -> Ring.pop ring | Cross xc -> Xchannel.pop_batch xc

let pop_batch t =
  match t.cur with
  | [] -> impl_pop_batch t
  | items ->
      t.cur <- [];
      Some (Batch.of_items items)

let rec pop t =
  match t.cur with
  | item :: rest ->
      t.cur <- rest;
      Some item
  | [] -> (
      match impl_pop_batch t with
      | Some b ->
          t.cur <- Batch.to_items b;
          pop t
      | None -> None)

let peek t =
  match t.cur with
  | item :: _ -> Some item
  | [] -> (
      match impl_pop_batch t with
      | Some b -> (
          t.cur <- Batch.to_items b;
          match t.cur with item :: _ -> Some item | [] -> None)
      | None -> None)

let length t =
  let buffered =
    match t.impl with
    | Local ring ->
        let n = ref 0 in
        Ring.iter (fun b -> n := !n + Batch.items b) ring;
        !n
    | Cross xc -> Xchannel.length xc
  in
  List.length t.cur + buffered

let is_empty t =
  t.cur = []
  && match t.impl with Local ring -> Ring.is_empty ring | Cross xc -> Xchannel.is_empty xc

let tuples_in t = Metrics.Counter.get t.tuples_in
let drops t = Metrics.Counter.get t.dropped

let high_water t =
  match t.impl with Local ring -> Ring.high_water ring | Cross xc -> Xchannel.high_water xc

let is_cross t = match t.impl with Cross _ -> true | Local _ -> false

let promote_cross ?capacity t =
  match t.impl with
  | Cross xc -> xc
  | Local ring ->
      (* Never smaller than what is already buffered: promotion runs on a
         single domain, so a blocking push here would never be drained.
         The bound is in items, so count through the batches (and any
         partially consumed remainder). *)
      let buffered = ref (List.length t.cur) in
      Ring.iter (fun b -> buffered := !buffered + Batch.items b) ring;
      let capacity =
        max (match capacity with Some c -> max 1 c | None -> t.capacity) !buffered
      in
      let xc = Xchannel.create ~capacity ~name:t.name () in
      (* Carry over anything buffered before the switch (promotion happens
         before the run, so this is normally empty): first the consumed
         batch's remainder, then the ring, oldest first. *)
      List.iter (fun item -> ignore (Xchannel.push xc item)) t.cur;
      t.cur <- [];
      let rec drain () =
        match Ring.pop ring with
        | Some batch ->
            ignore (Xchannel.push_batch xc batch);
            drain ()
        | None -> ()
      in
      drain ();
      t.impl <- Cross xc;
      xc

let cross t = match t.impl with Cross xc -> Some xc | Local _ -> None

let register_metrics t reg ~prefix =
  Metrics.attach_counter reg (prefix ^ ".tuples_in") t.tuples_in;
  Metrics.attach_counter reg (prefix ^ ".drops") t.dropped;
  Metrics.attach_gauge_fn reg (prefix ^ ".depth") (fun () -> float_of_int (length t));
  Metrics.attach_gauge_fn reg (prefix ^ ".high_water") (fun () -> float_of_int (high_water t));
  Metrics.attach_histogram reg (prefix ^ ".batch_items") t.occupancy
