module Ring = Gigascope_util.Ring
module Metrics = Gigascope_obs.Metrics

type t = {
  name : string;
  ring : Item.t Ring.t;
  tuples_in : Metrics.Counter.t;
  dropped : Metrics.Counter.t;
}

let create ?(capacity = 4096) ~name () =
  {
    name;
    ring = Ring.create ~capacity;
    tuples_in = Metrics.Counter.make ();
    dropped = Metrics.Counter.make ();
  }

let name t = t.name

let push t item =
  match item with
  | Item.Eof ->
      Ring.push_force t.ring Item.Eof;
      true
  | Item.Tuple _ ->
      let ok = Ring.push t.ring item in
      if ok then Metrics.Counter.incr t.tuples_in else Metrics.Counter.incr t.dropped;
      ok
  | Item.Punct _ | Item.Flush ->
      let ok = Ring.push t.ring item in
      if not ok then Metrics.Counter.incr t.dropped;
      ok

let pop t = Ring.pop t.ring
let peek t = Ring.peek t.ring
let length t = Ring.length t.ring
let is_empty t = Ring.is_empty t.ring
let tuples_in t = Metrics.Counter.get t.tuples_in
let drops t = Metrics.Counter.get t.dropped
let high_water t = Ring.high_water t.ring

let register_metrics t reg ~prefix =
  Metrics.attach_counter reg (prefix ^ ".tuples_in") t.tuples_in;
  Metrics.attach_counter reg (prefix ^ ".drops") t.dropped;
  Metrics.attach_gauge_fn reg (prefix ^ ".depth") (fun () -> float_of_int (Ring.length t.ring));
  Metrics.attach_gauge_fn reg (prefix ^ ".high_water") (fun () ->
      float_of_int (Ring.high_water t.ring))
