module Ring = Gigascope_util.Ring
module Metrics = Gigascope_obs.Metrics

(* A channel starts Local (plain bounded ring, single-domain cooperative
   scheduling). run_parallel promotes edges that cross a domain boundary
   to Cross before any domain spawns; Node.step_inputs and the operators
   never notice the difference. *)
type impl = Local of Item.t Ring.t | Cross of Xchannel.t

type t = {
  name : string;
  capacity : int;
  mutable impl : impl;
  tuples_in : Metrics.Counter.t;
  dropped : Metrics.Counter.t;
}

let create ?(capacity = 4096) ~name () =
  {
    name;
    capacity;
    impl = Local (Ring.create ~capacity);
    tuples_in = Metrics.Counter.make ();
    dropped = Metrics.Counter.make ();
  }

let name t = t.name
let capacity t = t.capacity

let push t item =
  match t.impl with
  | Local ring -> (
      match item with
      | Item.Eof ->
          Ring.push_force ring Item.Eof;
          true
      | Item.Tuple _ ->
          let ok = Ring.push ring item in
          if ok then Metrics.Counter.incr t.tuples_in else Metrics.Counter.incr t.dropped;
          ok
      | Item.Punct _ | Item.Flush ->
          let ok = Ring.push ring item in
          if not ok then Metrics.Counter.incr t.dropped;
          ok)
  | Cross xc ->
      (* Blocking push: cross-domain edges apply backpressure instead of
         dropping; a refusal means the channel was closed by an error
         shutdown. The channel's own cells keep counting so [rts.chan.*]
         and drop totals stay live after promotion. *)
      let ok = Xchannel.push xc item in
      (match item with
      | Item.Eof -> ()
      | Item.Tuple _ ->
          if ok then Metrics.Counter.incr t.tuples_in else Metrics.Counter.incr t.dropped
      | Item.Punct _ | Item.Flush -> if not ok then Metrics.Counter.incr t.dropped);
      ok

let pop t = match t.impl with Local ring -> Ring.pop ring | Cross xc -> Xchannel.pop xc
let peek t = match t.impl with Local ring -> Ring.peek ring | Cross xc -> Xchannel.peek xc
let length t = match t.impl with Local ring -> Ring.length ring | Cross xc -> Xchannel.length xc
let is_empty t = length t = 0
let tuples_in t = Metrics.Counter.get t.tuples_in
let drops t = Metrics.Counter.get t.dropped

let high_water t =
  match t.impl with Local ring -> Ring.high_water ring | Cross xc -> Xchannel.high_water xc

let is_cross t = match t.impl with Cross _ -> true | Local _ -> false

let promote_cross ?capacity t =
  match t.impl with
  | Cross xc -> xc
  | Local ring ->
      (* Never smaller than what is already buffered: promotion runs on a
         single domain, so a blocking push here would never be drained. *)
      let capacity =
        max (match capacity with Some c -> max 1 c | None -> t.capacity) (Ring.length ring)
      in
      let xc = Xchannel.create ~capacity ~name:t.name () in
      (* Carry over anything buffered before the switch (promotion happens
         before the run, so this is normally empty). *)
      let rec drain () =
        match Ring.pop ring with
        | Some item ->
            ignore (Xchannel.push xc item);
            drain ()
        | None -> ()
      in
      drain ();
      t.impl <- Cross xc;
      xc

let cross t = match t.impl with Cross xc -> Some xc | Local _ -> None

let register_metrics t reg ~prefix =
  Metrics.attach_counter reg (prefix ^ ".tuples_in") t.tuples_in;
  Metrics.attach_counter reg (prefix ^ ".drops") t.dropped;
  Metrics.attach_gauge_fn reg (prefix ^ ".depth") (fun () -> float_of_int (length t));
  Metrics.attach_gauge_fn reg (prefix ^ ".high_water") (fun () -> float_of_int (high_water t))
