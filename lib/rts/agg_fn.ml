type kind = Count | Sum | Min | Max | Avg

type spec = { kind : kind; arg : (Value.t array -> Value.t option) option }

type acc = {
  kind : kind;
  mutable n : int;
  mutable sum_i : int;
  mutable sum_f : float;
  mutable is_float : bool;
  mutable extremum : Value.t;
}

let init kind = { kind; n = 0; sum_i = 0; sum_f = 0.0; is_float = false; extremum = Value.Null }

let step acc v =
  match (acc.kind, v) with
  | Count, _ -> acc.n <- acc.n + 1
  | _, (None | Some Value.Null) -> ()
  | (Sum | Avg), Some (Value.Int i) ->
      acc.n <- acc.n + 1;
      acc.sum_i <- acc.sum_i + i;
      acc.sum_f <- acc.sum_f +. float_of_int i
  | (Sum | Avg), Some (Value.Float f) ->
      acc.n <- acc.n + 1;
      acc.is_float <- true;
      acc.sum_f <- acc.sum_f +. f
  | (Min | Max), Some v ->
      acc.n <- acc.n + 1;
      let better =
        match acc.extremum with
        | Value.Null -> true
        | prev -> if acc.kind = Min then Value.compare v prev < 0 else Value.compare v prev > 0
      in
      if better then acc.extremum <- v
  | (Sum | Avg), Some (Value.Bool _ | Value.Str _ | Value.Ip _) -> ()

let final acc =
  match acc.kind with
  | Count -> Value.Int acc.n
  | Sum ->
      if acc.n = 0 then Value.Null
      else if acc.is_float then Value.Float acc.sum_f
      else Value.Int acc.sum_i
  | Avg -> if acc.n = 0 then Value.Null else Value.Float (acc.sum_f /. float_of_int acc.n)
  | Min | Max -> acc.extremum

let merge_partial acc other =
  match acc.kind with
  | Count -> acc.n <- acc.n + other.n
  | Sum | Avg ->
      acc.n <- acc.n + other.n;
      acc.sum_i <- acc.sum_i + other.sum_i;
      acc.sum_f <- acc.sum_f +. other.sum_f;
      acc.is_float <- acc.is_float || other.is_float
  | Min | Max -> (
      match other.extremum with
      | Value.Null -> ()
      | v ->
          acc.n <- acc.n + other.n;
          let better =
            match acc.extremum with
            | Value.Null -> true
            | prev ->
                if acc.kind = Min then Value.compare v prev < 0 else Value.compare v prev > 0
          in
          if better then acc.extremum <- v)

let sub_kinds = function
  | Count -> [Count]
  | Sum -> [Sum]
  | Min -> [Min]
  | Max -> [Max]
  | Avg -> [Sum; Count]

let super_kind = function
  | Count -> [Sum]
  | Sum -> [Sum]
  | Min -> [Min]
  | Max -> [Max]
  | Avg -> [Sum; Sum]

let combine_avg ~sum ~count =
  match (Value.to_float sum, Value.to_float count) with
  | Some s, Some c when c > 0.0 -> Value.Float (s /. c)
  | _ -> Value.Null

let kind_to_string = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"
