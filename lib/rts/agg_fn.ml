module Sk = Gigascope_sketch.Sketch

type sketch_spec =
  | Distinct of { precision : int }
  | Heavy of { k : int }
  | Freq of { eps : float; delta : float }

type kind = Count | Sum | Min | Max | Avg | Sketch of { sk : sketch_spec; partial : bool }

type spec = { kind : kind; arg : (Value.t array -> Value.t option) option }

type acc = {
  kind : kind;
  mutable n : int;
  mutable sum_i : int;
  mutable sum_f : float;
  mutable is_float : bool;
  mutable extremum : Value.t;
  mutable sketch : Sk.t option;
}

let make_sketch = function
  | Distinct { precision } -> Sk.hll ~precision
  | Heavy { k } -> Sk.topk ~k
  | Freq { eps; delta } -> Sk.cm ~eps ~delta

let init kind =
  let sketch = match kind with Sketch { sk; _ } -> Some (make_sketch sk) | _ -> None in
  { kind; n = 0; sum_i = 0; sum_f = 0.0; is_float = false; extremum = Value.Null; sketch }

(* The canonical item a sketch hashes: the value's printed form, so the
   same value folds identically on every node of an aggregation tree. *)
let canonical v = Value.to_string v

let step acc v =
  match (acc.kind, v) with
  | Count, _ -> acc.n <- acc.n + 1
  | _, (None | Some Value.Null) -> ()
  | Sketch _, Some (Value.Sketch s) -> (
      (* a lower tree level's partial state: merge, don't re-hash.
         An incompatible state is skipped like any ill-typed argument. *)
      acc.n <- acc.n + 1;
      match acc.sketch with
      | Some dst -> ( match Sk.merge_into dst s with Ok () -> () | Error _ -> ())
      | None -> acc.sketch <- Some (Sk.copy s))
  | Sketch _, Some v -> (
      acc.n <- acc.n + 1;
      match acc.sketch with Some s -> Sk.add s (canonical v) | None -> ())
  | (Sum | Avg), Some (Value.Int i) ->
      acc.n <- acc.n + 1;
      acc.sum_i <- acc.sum_i + i;
      acc.sum_f <- acc.sum_f +. float_of_int i
  | (Sum | Avg), Some (Value.Float f) ->
      acc.n <- acc.n + 1;
      acc.is_float <- true;
      acc.sum_f <- acc.sum_f +. f
  | (Min | Max), Some v ->
      acc.n <- acc.n + 1;
      let better =
        match acc.extremum with
        | Value.Null -> true
        | prev -> if acc.kind = Min then Value.compare v prev < 0 else Value.compare v prev > 0
      in
      if better then acc.extremum <- v
  | (Sum | Avg), Some (Value.Bool _ | Value.Str _ | Value.Ip _ | Value.Sketch _) -> ()

let render_top s =
  String.concat ","
    (List.map (fun (item, count) -> Printf.sprintf "%s:%d" item count) (Sk.top s))

let final acc =
  match acc.kind with
  | Count -> Value.Int acc.n
  | Sum ->
      if acc.n = 0 then Value.Null
      else if acc.is_float then Value.Float acc.sum_f
      else Value.Int acc.sum_i
  | Avg -> if acc.n = 0 then Value.Null else Value.Float (acc.sum_f /. float_of_int acc.n)
  | Min | Max -> acc.extremum
  | Sketch { partial = true; _ } -> (
      (* copied: the accumulator may keep folding after the emit *)
      match acc.sketch with Some s -> Value.Sketch (Sk.copy s) | None -> Value.Null)
  | Sketch { sk; partial = false } -> (
      match acc.sketch with
      | None -> Value.Null
      | Some s -> (
          match sk with
          | Distinct _ | Freq _ -> Value.Int (Sk.estimate s)
          | Heavy _ -> Value.Str (render_top s)))

let merge_partial acc other =
  match acc.kind with
  | Count -> acc.n <- acc.n + other.n
  | Sum | Avg ->
      acc.n <- acc.n + other.n;
      acc.sum_i <- acc.sum_i + other.sum_i;
      acc.sum_f <- acc.sum_f +. other.sum_f;
      acc.is_float <- acc.is_float || other.is_float
  | Min | Max -> (
      match other.extremum with
      | Value.Null -> ()
      | v ->
          acc.n <- acc.n + other.n;
          let better =
            match acc.extremum with
            | Value.Null -> true
            | prev ->
                if acc.kind = Min then Value.compare v prev < 0 else Value.compare v prev > 0
          in
          if better then acc.extremum <- v)
  | Sketch _ -> (
      acc.n <- acc.n + other.n;
      match (acc.sketch, other.sketch) with
      | Some dst, Some src -> ( match Sk.merge_into dst src with Ok () -> () | Error _ -> ())
      | None, Some src -> acc.sketch <- Some (Sk.copy src)
      | _, None -> ())

let sub_kinds = function
  | Count -> [Count]
  | Sum -> [Sum]
  | Min -> [Min]
  | Max -> [Max]
  | Avg -> [Sum; Count]
  | Sketch s -> [Sketch { s with partial = true }]

let super_kind = function
  | Count -> [Sum]
  | Sum -> [Sum]
  | Min -> [Min]
  | Max -> [Max]
  | Avg -> [Sum; Sum]
  | Sketch s -> [Sketch { s with partial = false }]

let relay_kind = function
  | Count -> Sum
  | Sum -> Sum
  | Min -> Min
  | Max -> Max
  | Avg -> Avg (* never a sub kind; kept total *)
  | Sketch s -> Sketch { s with partial = true }

let combine_avg ~sum ~count =
  match (Value.to_float sum, Value.to_float count) with
  | Some s, Some c when c > 0.0 -> Value.Float (s /. c)
  | _ -> Value.Null

let result_ty kind ~arg_ty =
  match kind with
  | Count -> Ty.Int
  | Avg -> Ty.Float
  | Sum | Min | Max -> ( match arg_ty with Some t -> t | None -> Ty.Int)
  | Sketch { partial = true; _ } -> Ty.Sketch
  | Sketch { sk = Distinct _ | Freq _; partial = false } -> Ty.Int
  | Sketch { sk = Heavy _; partial = false } -> Ty.Str

let kind_to_string = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"
  | Sketch { sk = Distinct _; _ } -> "approx_count_distinct"
  | Sketch { sk = Heavy _; _ } -> "heavy_hitters"
  | Sketch { sk = Freq _; _ } -> "cm_count"
