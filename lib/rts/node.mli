(** Query nodes — the processes of Gigascope's architecture.

    A node is either a {e source} (an Interface bound to a Protocol,
    producing interpreted tuples) or a query node running an operator.
    LFTAs are lightweight query nodes linked into the runtime; HFTAs are
    the heavyweight ones. Nodes communicate through bounded channels; a
    subscriber that cannot keep up loses tuples, never blocks the
    producer. *)

type kind = Source | Lfta | Hfta

type source = {
  pull : unit -> Item.t option;
      (** next item, [None] when exhausted (EOF is then emitted once) *)
  clock : unit -> (int * Value.t) list;
      (** current low bounds on ordered fields — what a heartbeat
          publishes even when no tuple has flowed *)
}

type t

type subscriber =
  | Chan of Channel.t  (** a downstream node's input ring *)
  | Callback of (Item.t -> unit)  (** item-level application delivery *)
  | Batch_callback of (Batch.t -> unit)
      (** whole-batch application delivery — preserves the latency-stamp
          column, so egress layers (the network server) can close the
          ingest→deliver measurement per tuple *)

val make_source : name:string -> schema:Schema.t -> source -> t

val make_op : name:string -> kind:kind -> schema:Schema.t -> op:Operator.t -> t
(** Inputs are attached afterwards with {!connect}. *)

val name : t -> string
val kind : t -> kind
val schema : t -> Schema.t

val placement : t -> int option
(** Pinned execution domain for the parallel scheduler; [None] lets the
    scheduler place the node (sources and LFTAs on the packet-path
    domain, HFTAs as pipeline stages over the workers — see
    {!Scheduler.partition}). *)

val set_placement : t -> int option -> unit

val shard : t -> int option
(** Shard index for a node that is one replica of a sharded query chain
    ([None] for unsharded nodes). The parallel scheduler spreads tagged
    replicas over worker domains — including LFTA-kind replicas, which
    would otherwise stay on the packet-path domain. *)

val set_shard : t -> int option -> unit

val set_supervisor : t -> Supervisor.t option -> unit
(** With a supervisor installed, an exception raised inside a step
    (operator dispatch or source pull) is submitted to it instead of
    propagating: the node restarts, poisons itself (emitting
    [Item.Error] then [Item.Eof], and draining its inputs from then on
    so upstream never wedges), or escalates as {!Supervisor.Crashed}
    according to the policy. Without one (the default), the exception
    propagates as before. *)

val is_poisoned : t -> bool

val set_shed : t -> float option -> unit
(** Sources only (no-op elsewhere): with [Some hw] (a fraction of
    channel capacity in (0, 1]), a pulled tuple is discarded instead of
    emitted while any subscriber channel sits at or above the mark.
    Discards count in the [rts.shed.<node>] counter and are announced
    downstream as one [Item.Gap n] when pressure clears or at EOF, so
    [pulled = emitted + shed] always holds and the loss is visible. *)

val shed_count : t -> int

val set_state_bound : t -> float -> unit
(** Certified resident-state bound for this node's operator (tuples,
    open groups, or sketch-bearing group slots). Default [infinity] =
    uncertified. Negative values reset to [infinity]. Published as the
    [rts.state.<name>.bound] gauge. *)

val state_bound : t -> float

val set_state_slack : t -> float -> unit
(** Arm the state watchdog: after each input step, a query node found
    holding more than [bound × slack] items announces the loss as an
    [Item.Gap] and submits itself to the supervisor as crashed (the
    certificate was violated, so the imputed ordering it rests on is
    wrong — isolate/escalate per policy, never a wedge). [0.] (the
    default) disarms; sources and uncertified nodes are never
    checked. *)

val watchdog_trips : t -> int

val state_peak : t -> int
(** High-water mark of resident operator state (items), sampled after
    every input step; the [rts.state.<name>.peak] gauge. *)

val set_latency_sample : t -> int -> unit
(** Latency measurement interval (default 0 = off). On a source, every
    [n]-th pulled tuple is stamped with {!Gigascope_obs.Clock.now_ns}
    at ingest; the stamp rides the batched data plane as a parallel
    column ({!Batch.stamps}). On a query node the setting is inert —
    operators always propagate an incoming stamp (consume-once: the
    first stamp of a consumed batch rides the next emitted tuple).
    Ingest→deliver durations are observed into the [rts.latency.<name>]
    histogram when a stamped batch reaches a node with a callback
    subscriber. *)

val latency_sample : t -> int

val connect : downstream:t -> upstream:t -> capacity:int -> unit
(** Create a channel from [upstream] into [downstream]'s next input slot. *)

val add_subscriber : t -> subscriber -> unit

val inputs : t -> (t * Channel.t) array
(** Upstream node and the channel it feeds us through, per input. *)

val set_batch : t -> int -> unit
(** Output batch size (default 1): emitted tuples accumulate into a
    per-node builder and are delivered to every subscriber as one batch
    when [n] tuples are pending or a control item seals the batch.
    Changing the size flushes any pending partial batch. *)

val batch_size : t -> int

val emit : t -> Item.t -> unit
(** Feed an item to the output builder. At batch size 1 (the default)
    every item is delivered to every subscriber immediately (with
    per-channel drop accounting), exactly the tuple-at-a-time plane;
    at larger sizes tuples accumulate until sealed. Control items
    always seal and deliver the pending batch at once, so they never
    trail their stream position. *)

val step_source : t -> quantum:int -> bool
(** Pull and emit up to [quantum] items; true if anything was produced.
    Emits one [Eof] at exhaustion. Any partial output batch is flushed
    before returning (flush-on-idle: batching never adds more than one
    scheduler round of latency). *)

val step_inputs : t -> quantum:int -> bool
(** Drain up to [quantum] items from each input through the operator
    (whole batches at a time; the quantum is checked between batches);
    true if anything was consumed. Any partial output batch is flushed
    before returning. *)

val exhausted : t -> bool
(** Sources: pull returned [None]. Query nodes: EOF emitted downstream. *)

val blocked_input : t -> int option
val heartbeat : t -> unit
(** Sources only: emit a punctuation carrying the current clock bounds.
    No-op for query nodes (they translate incoming punctuation instead). *)

val inject_flush : t -> unit
(** Query nodes only: hand the operator an {!Item.Flush}, making it emit
    its open state now ("the user can obtain output by flushing the
    query", Section 2.2). No-op for sources. *)

val tuples_in : t -> int
val tuples_out : t -> int
val buffered : t -> int

val input_drops : t -> int
(** Tuples lost on this node's input channels. *)

val record_service : t -> float -> unit
(** Record one scheduler service slice (nanoseconds) into this node's
    service-time histogram (fed by {!Scheduler.run}). *)

val register_metrics : t -> Gigascope_obs.Metrics.t -> unit
(** Attach this node's cells under [rts.node.<name>]: [tuples_in] and
    [tuples_out] counters, a polled [buffered] gauge, the [service_ns]
    histogram, and the sampled [callback_ns] subscriber-latency
    histogram. Also attaches the ingest→deliver histogram as
    [rts.latency.<name>] (nanoseconds; populated only when latency
    sampling is on and this node delivers to a callback). *)
