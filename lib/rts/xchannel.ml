module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

type t = {
  name : string;
  capacity : int;
  q : Item.t Queue.t;
  lock : Mutex.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable hw : int;
  mutable on_push : unit -> unit;
  tuples_in : Metrics.Counter.t;
  dropped : Metrics.Counter.t;
  blocked_ns : Metrics.Counter.t;
}

let create ?(capacity = 4096) ~name () =
  if capacity <= 0 then invalid_arg "Xchannel.create: capacity must be positive";
  {
    name;
    capacity;
    q = Queue.create ();
    lock = Mutex.create ();
    not_full = Condition.create ();
    closed = false;
    hw = 0;
    on_push = ignore;
    tuples_in = Metrics.Counter.make ();
    dropped = Metrics.Counter.make ();
    blocked_ns = Metrics.Counter.make ();
  }

let name t = t.name
let capacity t = t.capacity

let set_on_push t f = t.on_push <- f

let push t item =
  Mutex.lock t.lock;
  (* Backpressure: block until the consumer makes room. The wait is the
     cross-domain analogue of a dropped tuple, so it is accounted
     ([blocked_ns]) the way the single-threaded Channel accounts drops. *)
  if (not t.closed) && Queue.length t.q >= t.capacity then begin
    let t0 = Clock.now_ns () in
    while (not t.closed) && Queue.length t.q >= t.capacity do
      Condition.wait t.not_full t.lock
    done;
    Metrics.Counter.add t.blocked_ns (int_of_float (Clock.now_ns () -. t0))
  end;
  let accepted = not t.closed in
  if accepted then begin
    Queue.push item t.q;
    let d = Queue.length t.q in
    if d > t.hw then t.hw <- d;
    match item with
    | Item.Tuple _ -> Metrics.Counter.incr t.tuples_in
    | Item.Punct _ | Item.Flush | Item.Eof -> ()
  end
  else begin
    match item with
    | Item.Tuple _ | Item.Punct _ | Item.Flush -> Metrics.Counter.incr t.dropped
    | Item.Eof -> ()
  end;
  Mutex.unlock t.lock;
  (* Notify outside the lock: the consumer's signal has its own mutex and
     taking both at once invites lock-order cycles. *)
  if accepted then t.on_push ();
  accepted

let pop t =
  Mutex.lock t.lock;
  let item = Queue.take_opt t.q in
  if item <> None then Condition.signal t.not_full;
  Mutex.unlock t.lock;
  item

(* Sound for SPSC use: only the consumer removes items, so a peeked head
   stays the head until the same domain pops it. *)
let peek t =
  Mutex.lock t.lock;
  let item = Queue.peek_opt t.q in
  Mutex.unlock t.lock;
  item

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  Mutex.unlock t.lock;
  n

let is_empty t = length t = 0

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock;
  t.on_push ()

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c

(* [hw] is written under the lock by the producer; read it under the
   lock too, or a mid-run exposition from another domain is a race. *)
let high_water t =
  Mutex.lock t.lock;
  let hw = t.hw in
  Mutex.unlock t.lock;
  hw

let tuples_in t = Metrics.Counter.get t.tuples_in
let drops t = Metrics.Counter.get t.dropped
let blocked_ns t = Metrics.Counter.get t.blocked_ns

let register_metrics t reg ~prefix =
  Metrics.attach_counter reg (prefix ^ ".tuples_in") t.tuples_in;
  Metrics.attach_counter reg (prefix ^ ".drops") t.dropped;
  Metrics.attach_counter reg (prefix ^ ".blocked_ns") t.blocked_ns;
  Metrics.attach_gauge_fn reg (prefix ^ ".depth") (fun () -> float_of_int (length t));
  Metrics.attach_gauge_fn reg (prefix ^ ".high_water") (fun () -> float_of_int (high_water t))
