module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

type t = {
  name : string;
  capacity : int;  (* in items, matching Channel *)
  q : Batch.t Queue.t;
  mutable cur : Item.t list;  (* consumer-side remainder of a popped batch *)
  mutable n_items : int;  (* items buffered: queue plus remainder *)
  lock : Mutex.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable hw : int;
  mutable on_push : unit -> unit;
  tuples_in : Metrics.Counter.t;
  dropped : Metrics.Counter.t;
  blocked_ns : Metrics.Counter.t;
  occupancy : Metrics.Histogram.t;  (* items per pushed batch *)
}

let create ?(capacity = 4096) ~name () =
  if capacity <= 0 then invalid_arg "Xchannel.create: capacity must be positive";
  {
    name;
    capacity;
    q = Queue.create ();
    cur = [];
    n_items = 0;
    lock = Mutex.create ();
    not_full = Condition.create ();
    closed = false;
    hw = 0;
    on_push = ignore;
    tuples_in = Metrics.Counter.make ();
    dropped = Metrics.Counter.make ();
    blocked_ns = Metrics.Counter.make ();
    occupancy = Metrics.Histogram.make ();
  }

let name t = t.name
let capacity t = t.capacity

let set_on_push t f = t.on_push <- f

let push_batch t batch =
  let size = Batch.items batch in
  (* Chaos hooks, fired before the lock: an injected stall models a slow
     consumer domain; an injected close reproduces the
     close-while-producer-mid-push race (the closer below is [close]
     inlined — [close] itself is defined later and must not be called
     under our lock). *)
  Faults.stall_point ~chan:t.name;
  Faults.xclose_point ~chan:t.name (fun () ->
      Mutex.lock t.lock;
      t.closed <- true;
      Condition.broadcast t.not_full;
      Mutex.unlock t.lock;
      t.on_push ());
  Mutex.lock t.lock;
  (* Backpressure: block until the consumer makes room. The wait is the
     cross-domain analogue of a dropped tuple, so it is accounted
     ([blocked_ns]) the way the single-threaded Channel accounts drops.
     A batch is admitted whole once any room exists, so depth can
     overshoot [capacity] by one batch — blocking a partially admissible
     batch until it fits exactly would deadlock when a batch is larger
     than the capacity. *)
  if (not t.closed) && t.n_items >= t.capacity then begin
    let t0 = Clock.now_ns () in
    while (not t.closed) && t.n_items >= t.capacity do
      Condition.wait t.not_full t.lock
    done;
    Metrics.Counter.add t.blocked_ns (int_of_float (Clock.now_ns () -. t0))
  end;
  let accepted = not t.closed in
  if accepted then begin
    Queue.push batch t.q;
    t.n_items <- t.n_items + size;
    if t.n_items > t.hw then t.hw <- t.n_items;
    let nt = Batch.n_tuples batch in
    if nt > 0 then Metrics.Counter.add t.tuples_in nt;
    Metrics.Histogram.observe t.occupancy (float_of_int size)
  end
  else begin
    (* Closed channel: count what was lost — every tuple the batch held,
       plus a non-Eof control item (Eof on a closed channel is the
       normal shutdown overlap, not a loss). *)
    let lost =
      Batch.n_tuples batch
      + (match Batch.ctrl batch with
        | Some (Item.Punct _ | Item.Flush | Item.Gap _) -> 1
        | Some (Item.Eof | Item.Error _) | Some (Item.Tuple _) | None -> 0)
    in
    if lost > 0 then Metrics.Counter.add t.dropped lost
  end;
  Mutex.unlock t.lock;
  (* Notify outside the lock: the consumer's signal has its own mutex and
     taking both at once invites lock-order cycles. *)
  if accepted then t.on_push ();
  accepted

let push t item = push_batch t (Batch.of_item item)

(* Consumer side (SPSC): [cur] holds the remainder of a dequeued batch so
   the item-level API can interleave with batch pops; both run under the
   lock, and only the consumer domain touches them. *)

let refill_cur t =
  if t.cur = [] then
    match Queue.take_opt t.q with Some b -> t.cur <- Batch.to_items b | None -> ()

let pop t =
  Mutex.lock t.lock;
  refill_cur t;
  let item =
    match t.cur with
    | it :: rest ->
        t.cur <- rest;
        t.n_items <- t.n_items - 1;
        Some it
    | [] -> None
  in
  if item <> None then Condition.signal t.not_full;
  Mutex.unlock t.lock;
  item

let pop_batch t =
  Mutex.lock t.lock;
  let batch =
    match t.cur with
    | [] -> (
        match Queue.take_opt t.q with
        | Some b ->
            t.n_items <- t.n_items - Batch.items b;
            Some b
        | None -> None)
    | items ->
        t.cur <- [];
        t.n_items <- t.n_items - List.length items;
        Some (Batch.of_items items)
  in
  if batch <> None then Condition.signal t.not_full;
  Mutex.unlock t.lock;
  batch

(* Sound for SPSC use: only the consumer removes items, so a peeked head
   stays the head until the same domain pops it. *)
let peek t =
  Mutex.lock t.lock;
  refill_cur t;
  let item = match t.cur with it :: _ -> Some it | [] -> None in
  Mutex.unlock t.lock;
  item

let length t =
  Mutex.lock t.lock;
  let n = t.n_items in
  Mutex.unlock t.lock;
  n

let is_empty t = length t = 0

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock;
  t.on_push ()

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c

(* [hw] is written under the lock by the producer; read it under the
   lock too, or a mid-run exposition from another domain is a race. *)
let high_water t =
  Mutex.lock t.lock;
  let hw = t.hw in
  Mutex.unlock t.lock;
  hw

let tuples_in t = Metrics.Counter.get t.tuples_in
let drops t = Metrics.Counter.get t.dropped
let blocked_ns t = Metrics.Counter.get t.blocked_ns

let register_metrics t reg ~prefix =
  Metrics.attach_counter reg (prefix ^ ".tuples_in") t.tuples_in;
  Metrics.attach_counter reg (prefix ^ ".drops") t.dropped;
  Metrics.attach_counter reg (prefix ^ ".blocked_ns") t.blocked_ns;
  Metrics.attach_gauge_fn reg (prefix ^ ".depth") (fun () -> float_of_int (length t));
  Metrics.attach_gauge_fn reg (prefix ^ ".high_water") (fun () -> float_of_int (high_water t));
  Metrics.attach_histogram reg (prefix ^ ".batch_items") t.occupancy
