module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

type stats = { rounds : int; heartbeat_requests : int }

(* Service-time sampling period outside trace mode: timing every round
   costs two clock reads per node per round, which the 5%-overhead budget
   on the hot path does not allow. *)
let default_service_sample = 8

let rec walk_upstream visited node =
  if not (List.memq node !visited) then begin
    visited := node :: !visited;
    if Node.kind node = Node.Source then Node.heartbeat node
    else Array.iter (fun (up, _) -> walk_upstream visited up) (Node.inputs node)
  end

let request_heartbeat node =
  let visited = ref [] in
  walk_upstream visited node

let channels_empty node =
  Array.for_all (fun (_, chan) -> Channel.is_empty chan) (Node.inputs node)

let run ?(quantum = 64) ?(max_rounds = 10_000_000) ?(heartbeats = true) ?heartbeat_period
    ?on_round ?(trace = false) mgr =
  Manager.start mgr;
  let reg = Manager.metrics mgr in
  let rounds_c = Metrics.counter reg "rts.scheduler.rounds" in
  let hb_c = Metrics.counter reg "rts.scheduler.heartbeat_requests" in
  let sample = if trace then 1 else default_service_sample in
  Metrics.Gauge.set_int (Metrics.gauge reg "rts.scheduler.service_sample") sample;
  let nodes = Manager.nodes mgr in
  let rounds = ref 0 in
  let heartbeat_requests = ref 0 in
  let finished () =
    List.for_all (fun n -> Node.exhausted n && channels_empty n) nodes
  in
  let result = ref None in
  while !result = None do
    if finished () then result := Some (Ok { rounds = !rounds; heartbeat_requests = !heartbeat_requests })
    else if !rounds >= max_rounds then
      result := Some (Error (Printf.sprintf "scheduler: no completion after %d rounds" max_rounds))
    else begin
      incr rounds;
      Metrics.Counter.incr rounds_c;
      let timed = (!rounds - 1) mod sample = 0 in
      let progress = ref false in
      List.iter
        (fun node ->
          let step () =
            if Node.kind node = Node.Source then Node.step_source node ~quantum
            else Node.step_inputs node ~quantum
          in
          let made =
            if timed then begin
              let t0 = Clock.now_ns () in
              let r = step () in
              Node.record_service node (Clock.now_ns () -. t0);
              r
            end
            else step ()
          in
          if made then progress := true)
        nodes;
      let hb_fired = ref false in
      (match heartbeat_period with
      | Some period when period > 0 && !rounds mod period = 0 ->
          List.iter
            (fun node ->
              if Node.kind node = Node.Source && not (Node.exhausted node) then begin
                Node.heartbeat node;
                hb_fired := true
              end)
            nodes
      | _ -> ());
      if heartbeats then
        List.iter
          (fun node ->
            match Node.blocked_input node with
            | Some i ->
                incr heartbeat_requests;
                Metrics.Counter.incr hb_c;
                hb_fired := true;
                let up, _ = (Node.inputs node).(i) in
                request_heartbeat up
            | None -> ())
          nodes;
      (match on_round with Some f -> f !rounds | None -> ());
      (* A heartbeat pushes punctuation into channels, so it counts as
         progress for the next round. No item moved and nothing fired
         means either completion (checked next iteration) or a wedged
         network, which we surface rather than spin on. *)
      if (not !progress) && (not !hb_fired) && not (finished ()) then
        result := Some (Error "scheduler: wedged (no progress, not finished)")
    end
  done;
  match !result with Some r -> r | None -> assert false
