module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

type stats = { rounds : int; heartbeat_requests : int }

(* Service-time sampling period outside trace mode: timing every round
   costs two clock reads per node per round, which the 5%-overhead budget
   on the hot path does not allow. *)
let default_service_sample = 8

let rec walk_upstream visited node =
  if not (List.memq node !visited) then begin
    visited := node :: !visited;
    if Node.kind node = Node.Source then Node.heartbeat node
    else Array.iter (fun (up, _) -> walk_upstream visited up) (Node.inputs node)
  end

let request_heartbeat node =
  let visited = ref [] in
  walk_upstream visited node

let channels_empty node =
  Array.for_all (fun (_, chan) -> Channel.is_empty chan) (Node.inputs node)

let run ?quantum ?(max_rounds = 10_000_000) ?(heartbeats = true) ?heartbeat_period
    ?on_round ?(trace = false) ?(batch = 1) ?supervisor ?shed ?(latency_sample = 0)
    ?(state_slack = 0.0) mgr =
  (* A quantum smaller than the batch flushes every output builder before
     it fills, so the *default* quantum floors at the batch — the knobs
     compose. An explicit quantum wins: callers pinning the scheduling
     granularity (round-indexed hooks, granularity sweeps) keep the round
     structure they asked for, at the price of partial batches. *)
  let quantum = match quantum with Some q -> q | None -> max 64 batch in
  Manager.start mgr;
  let reg = Manager.metrics mgr in
  let rounds_c = Metrics.counter reg "rts.scheduler.rounds" in
  let hb_c = Metrics.counter reg "rts.scheduler.heartbeat_requests" in
  let sample = if trace then 1 else default_service_sample in
  Metrics.Gauge.set_int (Metrics.gauge reg "rts.scheduler.service_sample") sample;
  Metrics.Gauge.set_int (Metrics.gauge reg "rts.scheduler.batch") (max 1 batch);
  Metrics.Gauge.set_int (Metrics.gauge reg "rts.scheduler.latency_sample") (max 0 latency_sample);
  let nodes = Manager.nodes mgr in
  List.iter
    (fun n ->
      Node.set_batch n batch;
      Node.set_supervisor n supervisor;
      Node.set_shed n shed;
      Node.set_latency_sample n latency_sample;
      Node.set_state_slack n state_slack)
    nodes;
  (match supervisor with Some s -> Supervisor.register_metrics s reg | None -> ());
  (* [iter] counts scheduling iterations (max_rounds guard, sampling,
     periodic heartbeats, the on_round hook); [rounds] counts only the
     productive ones — iterations in which some node actually moved an
     item. The two diverge when every node is blocked awaiting heartbeats
     (punctuation-only iterations) and on the final wedged iteration, so
     the [rts.scheduler.rounds] metric tracks observable progress. *)
  let iter = ref 0 in
  let rounds = ref 0 in
  let heartbeat_requests = ref 0 in
  let finished () =
    List.for_all (fun n -> Node.exhausted n && channels_empty n) nodes
  in
  let result = ref None in
  (try
  while !result = None do
    if finished () then result := Some (Ok { rounds = !rounds; heartbeat_requests = !heartbeat_requests })
    else if !iter >= max_rounds then
      result := Some (Error (Printf.sprintf "scheduler: no completion after %d rounds" max_rounds))
    else begin
      incr iter;
      let timed = (!iter - 1) mod sample = 0 in
      let progress = ref false in
      List.iter
        (fun node ->
          let step () =
            if Node.kind node = Node.Source then Node.step_source node ~quantum
            else Node.step_inputs node ~quantum
          in
          let made =
            if timed then begin
              let t0 = Clock.now_ns () in
              let r = step () in
              Node.record_service node (Clock.now_ns () -. t0);
              r
            end
            else step ()
          in
          if made then progress := true)
        nodes;
      if !progress then begin
        incr rounds;
        Metrics.Counter.incr rounds_c
      end;
      let hb_fired = ref false in
      (match heartbeat_period with
      | Some period when period > 0 && !iter mod period = 0 ->
          List.iter
            (fun node ->
              if Node.kind node = Node.Source && not (Node.exhausted node) then begin
                Node.heartbeat node;
                hb_fired := true
              end)
            nodes
      | _ -> ());
      if heartbeats then
        List.iter
          (fun node ->
            match Node.blocked_input node with
            | Some i ->
                incr heartbeat_requests;
                Metrics.Counter.incr hb_c;
                hb_fired := true;
                let up, _ = (Node.inputs node).(i) in
                request_heartbeat up
            | None -> ())
          nodes;
      (match on_round with Some f -> f !iter | None -> ());
      (* A heartbeat pushes punctuation into channels, so it counts as
         progress for the next round. No item moved and nothing fired
         means either completion (checked next iteration) or a wedged
         network, which we surface rather than spin on. *)
      if (not !progress) && (not !hb_fired) && not (finished ()) then
        result := Some (Error "scheduler: wedged (no progress, not finished)")
    end
  done
  with Supervisor.Crashed _ as e -> result := Some (Error (Printexc.to_string e)));
  match !result with Some r -> r | None -> assert false

(* ---------------- parallel execution ------------------------------------ *)

(* Partition the network over [domains] execution domains: sources and
   LFTAs stay on domain 0 (the paper's runtime process, which owns the
   packet path and the source clocks), HFTAs are spread over the
   [domains - 1] worker domains. A node pinned via {!Node.set_placement}
   (the [placement] DEFINE property or gsq's [--placement]) goes exactly
   where it asks, including domain 0.

   The spread must be acyclic at the {e domain} level: cross-domain
   channels block when full ({!Xchannel.push}), and a domain blocked
   mid-push cannot step its other nodes, so a ring of domains each
   pushing into the next's full input is a permanent deadlock no
   heartbeat can break (naive round-robin creates one as soon as a chain
   of three HFTAs wraps back onto an earlier worker). Unpinned HFTAs are
   therefore assigned as pipeline stages, in topological order: an HFTA
   fed only by domain 0 starts a pipeline on the next worker
   (round-robin for load spread); an HFTA downstream of other HFTAs
   lands one worker above its highest upstream, saturating at the last
   worker. Every cross edge then goes from domain 0 into a worker or
   from a lower- to a strictly higher-numbered worker — a DAG by
   construction, and in a domain-level DAG the topologically last
   blocked domain always has a consumer that drains it. Pinning can
   still express a cycle; that is detected and rejected here rather than
   letting the run hang. *)
let partition ~domains nodes =
  let n_workers = domains - 1 in
  let dom = Hashtbl.create 32 in
  let next = ref 0 in
  List.iter
    (fun node ->
      let d =
        match (Node.kind node, Node.shard node) with
        | Node.Source, _ -> 0
        (* A shard replica goes to the worker owning its shard index,
           even when its kind is Lfta: the whole point of sharding is
           taking the per-tuple work off the packet-path domain. Shard s
           -> worker 1 + (s mod workers), so every replica of shard s
           (its filter, sub-aggregate, and any helpers) shares one
           domain and distinct shards land on distinct workers when
           there are enough. Explicit placement still wins. *)
        | (Node.Lfta | Node.Hfta), Some s when Node.placement node = None ->
            1 + (s mod n_workers)
        | Node.Lfta, _ -> 0
        | Node.Hfta, _ -> (
            match Node.placement node with
            | Some d -> ((d mod domains) + domains) mod domains
            | None ->
                let upstream_floor =
                  Array.fold_left
                    (fun acc (up, _) ->
                      match Hashtbl.find_opt dom (Node.name up) with
                      | Some d -> max acc d
                      | None -> acc)
                    0 (Node.inputs node)
                in
                if upstream_floor = 0 then begin
                  let p = 1 + (!next mod n_workers) in
                  incr next;
                  p
                end
                else min (upstream_floor + 1) n_workers)
      in
      Hashtbl.replace dom (Node.name node) d)
    nodes;
  (* Cycle check over the domain graph — only pinning can defeat the
     pipeline rule, but a hang is bad enough to verify unconditionally. *)
  let adj = Array.make domains [] in
  List.iter
    (fun node ->
      let dn = Hashtbl.find dom (Node.name node) in
      Array.iter
        (fun ((up : Node.t), _) ->
          let du = Hashtbl.find dom (Node.name up) in
          if du <> dn && not (List.mem dn adj.(du)) then adj.(du) <- dn :: adj.(du))
        (Node.inputs node))
    nodes;
  let color = Array.make domains 0 in
  let cycle = ref None in
  let rec dfs path d =
    if Option.is_none !cycle then
      match color.(d) with
      | 1 ->
          (* [path] is most-recent-first; the cycle runs d .. path-head d *)
          let seg = ref [] in
          (try
             List.iter
               (fun x ->
                 seg := x :: !seg;
                 if x = d then raise Exit)
               path
           with Exit -> ());
          cycle := Some (!seg @ [ d ])
      | 2 -> ()
      | _ ->
          color.(d) <- 1;
          List.iter (dfs (d :: path)) adj.(d);
          color.(d) <- 2
  in
  for d = 0 to domains - 1 do
    dfs [] d
  done;
  match !cycle with
  | Some ds ->
      Error
        (Printf.sprintf
           "scheduler: placement creates a cross-domain channel cycle (domains %s); blocking \
            cross-domain channels would deadlock — place each stage on a domain no lower than \
            its upstream HFTAs"
           (String.concat " -> " (List.map string_of_int ds)))
  | None ->
      let parts = Array.make domains [] in
      List.iter
        (fun node ->
          let p = Hashtbl.find dom (Node.name node) in
          parts.(p) <- node :: parts.(p))
        nodes;
      Ok (Array.map List.rev parts)

let run_parallel ?quantum ?(max_rounds = 10_000_000) ?(heartbeats = true)
    ?heartbeat_period ?(trace = false) ?(placement = []) ?(batch = 1) ?supervisor ?shed
    ?(latency_sample = 0) ?(state_slack = 0.0) ~domains mgr =
  let quantum = match quantum with Some q -> q | None -> max 64 batch in
  let apply_placement () =
    let rec go = function
      | [] -> Ok ()
      | (name, d) :: rest -> (
          match Manager.find mgr name with
          | Some node ->
              Node.set_placement node (Some d);
              go rest
          | None -> Error (Printf.sprintf "scheduler: --placement names unknown node %s" name))
    in
    go placement
  in
  match apply_placement () with
  | Error _ as e -> e
  | Ok () -> (
      if domains <= 1 then
        run ~quantum ~max_rounds ~heartbeats ?heartbeat_period ~trace ~batch ?supervisor ?shed
          ~latency_sample ~state_slack mgr
      else
      match partition ~domains (Manager.nodes mgr) with
      | Error _ as e -> e
      | Ok parts ->
        Manager.start mgr;
        let reg = Manager.metrics mgr in
        let rounds_c = Metrics.counter reg "rts.scheduler.rounds" in
        let hb_c = Metrics.counter reg "rts.scheduler.heartbeat_requests" in
        let sample = if trace then 1 else default_service_sample in
        Metrics.Gauge.set_int (Metrics.gauge reg "rts.scheduler.service_sample") sample;
        Metrics.Gauge.set_int (Metrics.gauge reg "rts.scheduler.domains") domains;
        Metrics.Gauge.set_int (Metrics.gauge reg "rts.scheduler.batch") (max 1 batch);
        Metrics.Gauge.set_int (Metrics.gauge reg "rts.scheduler.latency_sample") (max 0 latency_sample);
        let nodes = Manager.nodes mgr in
        List.iter
          (fun n ->
            Node.set_batch n batch;
            Node.set_supervisor n supervisor;
            Node.set_shed n shed;
            Node.set_latency_sample n latency_sample;
            Node.set_state_slack n state_slack)
          nodes;
        (match supervisor with Some s -> Supervisor.register_metrics s reg | None -> ());
        let part_of = Hashtbl.create 32 in
        Array.iteri
          (fun p ns -> List.iter (fun n -> Hashtbl.replace part_of (Node.name n) p) ns)
          parts;
        let shared = Domain_runner.make_shared ~partitions:domains in
        let signals = Domain_runner.signals shared in
        (* Promote every edge that crosses a domain boundary. This happens
           before any domain spawns, so registration in the metrics
           registry and the consumer-wakeup hooks are race-free. *)
        List.iter
          (fun node ->
            let pn = Hashtbl.find part_of (Node.name node) in
            Array.iter
              (fun ((up : Node.t), chan) ->
                if Hashtbl.find part_of (Node.name up) <> pn then begin
                  let already = Channel.is_cross chan in
                  (* Small capacity on purpose: a deep cross channel lets
                     the producer domain run unboundedly ahead, and a
                     downstream merge/join then buffers that whole lead
                     before its heartbeat punctuation catches up. *)
                  (* Room for at least two full batches, or a producer
                     ping-pongs against the bound on every push. *)
                  let xcap =
                    min (Channel.capacity chan) (max (max (4 * quantum) 64) (2 * batch))
                  in
                  let xc = Channel.promote_cross ~capacity:xcap chan in
                  Xchannel.set_on_push xc (fun () -> Domain_runner.notify signals.(pn));
                  if not already then begin
                    Manager.register_xchannel_metrics mgr xc;
                    Domain_runner.add_xchannel shared xc
                  end
                end)
              (Node.inputs node))
          nodes;
        let runners =
          List.filter_map
            (fun id ->
              match parts.(id) with
              | [] ->
                  (* no domain will ever own this signal; count it done
                     for the completion and wedge checks *)
                  Domain_runner.mark_exited signals.(id);
                  None
              | ns ->
                  Some
                    (Domain_runner.make ~id ~nodes:ns ~quantum ~heartbeats ~sample))
            (List.init (domains - 1) (fun i -> i + 1))
        in
        let handles = List.map (Domain_runner.spawn shared) runners in
        (* Domain 0: the single-threaded loop over sources + LFTAs (plus
           pinned HFTAs), with two extra duties — draining cross-domain
           heartbeat requests, and staying in the loop (servicing those
           requests) until every worker has exited, so the final join
           never waits on a parked domain. *)
        let my_nodes = parts.(0) in
        let iter = ref 0 in
        let rounds = ref 0 in
        let heartbeat_requests = ref 0 in
        let finished0 () =
          List.for_all (fun n -> Node.exhausted n && channels_empty n) my_nodes
          && Domain_runner.all_workers_exited shared
        in
        let loop () =
          let result = ref None in
          while !result = None do
            if Domain_runner.stopped shared then
              result :=
                Some
                  (Error
                     (Option.value (Domain_runner.error shared)
                        ~default:"scheduler: parallel run aborted"))
            else if finished0 () then result := Some (Ok ())
            else if !iter >= max_rounds then
              result :=
                Some
                  (Error (Printf.sprintf "scheduler: no completion after %d rounds" max_rounds))
            else begin
              incr iter;
              let timed = (!iter - 1) mod sample = 0 in
              let progress = ref false in
              List.iter
                (fun node ->
                  let step () =
                    if Node.kind node = Node.Source then Node.step_source node ~quantum
                    else Node.step_inputs node ~quantum
                  in
                  let made =
                    if timed then begin
                      let t0 = Clock.now_ns () in
                      let r = step () in
                      Node.record_service node (Clock.now_ns () -. t0);
                      r
                    end
                    else step ()
                  in
                  if made then progress := true)
                my_nodes;
              if !progress then begin
                incr rounds;
                Metrics.Counter.incr rounds_c
              end;
              let hb_fired = ref false in
              (match heartbeat_period with
              | Some period when period > 0 && !iter mod period = 0 ->
                  List.iter
                    (fun node ->
                      if Node.kind node = Node.Source && not (Node.exhausted node) then begin
                        Node.heartbeat node;
                        hb_fired := true
                      end)
                    my_nodes
              | _ -> ());
              if heartbeats then
                List.iter
                  (fun node ->
                    match Node.blocked_input node with
                    | Some i ->
                        incr heartbeat_requests;
                        Metrics.Counter.incr hb_c;
                        hb_fired := true;
                        let up, _ = (Node.inputs node).(i) in
                        request_heartbeat up
                    | None -> ())
                  my_nodes;
              (match Domain_runner.take_heartbeats shared with
              | [] -> ()
              | pending ->
                  hb_fired := true;
                  List.iter
                    (fun src ->
                      incr heartbeat_requests;
                      Metrics.Counter.incr hb_c;
                      Node.heartbeat src)
                    pending);
              (* Quiet is not necessarily a wedge here: a worker may be
                 mid-quantum or about to queue a heartbeat request. But if
                 the probe shows every domain parked with nothing pending
                 anywhere, nobody will ever wake anybody — report the same
                 wedge the single-threaded scheduler does. Otherwise park
                 until a worker pokes us (heartbeat queue, a push into a
                 pinned HFTA's input, its own park or exit, or an abort). *)
              if (not !progress) && (not !hb_fired) && not (finished0 ()) then begin
                if Domain_runner.probe_wedged shared then
                  result := Some (Error "scheduler: wedged (no progress, not finished)")
                else Domain_runner.wait signals.(0)
              end
            end
          done;
          match !result with Some r -> r | None -> assert false
        in
        let res = try loop () with e -> Error (Printexc.to_string e) in
        (* On error, unblock everyone before joining; on success every
           worker has already exited its loop (finished0 waits for that),
           so the joins return promptly. *)
        (match res with
        | Error msg -> Domain_runner.fail shared msg
        | Ok () -> ());
        List.iter Domain.join handles;
        match (res, Domain_runner.error shared) with
        | Error _, Some msg -> Error msg
        | Error msg, None -> Error msg
        | Ok (), Some msg -> Error msg
        | Ok (), None -> Ok { rounds = !rounds; heartbeat_requests = !heartbeat_requests })
