module Metrics = Gigascope_obs.Metrics

type policy = Fail_fast | Isolate | Restart

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fail_fast" | "fail-fast" | "failfast" -> Ok Fail_fast
  | "isolate" -> Ok Isolate
  | "restart" -> Ok Restart
  | other -> Error (Printf.sprintf "unknown supervision policy %S (fail_fast|isolate|restart)" other)

let policy_to_string = function
  | Fail_fast -> "fail_fast"
  | Isolate -> "isolate"
  | Restart -> "restart"

exception Crashed of string * string
(* (node, message): a Fail_fast escalation. Raised out of the node step
   and caught at the scheduler boundary, which turns it into the run's
   [Error] result — on a worker domain the existing crash reporting
   forwards it to domain 0. *)

(* Crashes escalated out of worker domains are stringified by the
   existing domain_runner reporting; register a printer so they read as
   a one-liner naming the node, not a constructor dump. *)
let () =
  Printexc.register_printer (function
    | Crashed (node, msg) -> Some (Printf.sprintf "node %s crashed: %s" node msg)
    | _ -> None)

type verdict = Retry | Poison | Escalate

type t = {
  policy : policy;
  restart_budget : int;
  mu : Mutex.t;
  budgets : (string, int) Hashtbl.t;  (* node -> restarts consumed *)
  mutable poisoned_nodes : string list;
  restarts : Metrics.Counter.t;
  poisons : Metrics.Counter.t;
  escalations : Metrics.Counter.t;
}

let create ?(policy = Fail_fast) ?(restart_budget = 3) () =
  {
    policy;
    restart_budget = max 0 restart_budget;
    mu = Mutex.create ();
    budgets = Hashtbl.create 8;
    poisoned_nodes = [];
    restarts = Metrics.Counter.make ();
    poisons = Metrics.Counter.make ();
    escalations = Metrics.Counter.make ();
  }

let policy t = t.policy

let register_metrics t reg =
  let attach name c = if not (Metrics.mem reg name) then Metrics.attach_counter reg name c in
  attach "rts.supervisor.restarts" t.restarts;
  attach "rts.supervisor.poisoned" t.poisons;
  attach "rts.supervisor.escalations" t.escalations

(* Called from whichever domain stepped the crashing node; the budget
   table is shared, hence the lock. The verdict is advisory policy — the
   node itself performs the restart or the poisoning, because only it
   owns the operator state. *)
let on_crash t ~node ~restartable exn =
  let msg =
    match exn with Faults.Injected m -> m | e -> Printexc.to_string e
  in
  Mutex.lock t.mu;
  let verdict =
    match t.policy with
    | Fail_fast ->
        Metrics.Counter.incr t.escalations;
        Escalate
    | Isolate ->
        t.poisoned_nodes <- node :: t.poisoned_nodes;
        Metrics.Counter.incr t.poisons;
        Poison
    | Restart ->
        let used = Option.value (Hashtbl.find_opt t.budgets node) ~default:0 in
        if restartable && used < t.restart_budget then begin
          Hashtbl.replace t.budgets node (used + 1);
          Metrics.Counter.incr t.restarts;
          Retry
        end
        else begin
          t.poisoned_nodes <- node :: t.poisoned_nodes;
          Metrics.Counter.incr t.poisons;
          Poison
        end
  in
  Mutex.unlock t.mu;
  (verdict, msg)

let restarts t = Metrics.Counter.get t.restarts

let poisoned t =
  Mutex.lock t.mu;
  let l = t.poisoned_nodes in
  Mutex.unlock t.mu;
  l
