(** The order-preserving merge (GSQL's [Merge] clause).

    A union of streams with identical schemas that preserves the ordering
    property of a designated attribute. "This operator is surprisingly
    important — we implemented it before the join operator": optical links
    are simplex, so seeing a full logical link means merging two
    interfaces' streams (Section 2.2).

    Merge buffers each input and emits the globally smallest head once
    every other input's low bound has passed it. A silent input therefore
    blocks the merge — exactly the situation Section 3's "Unblocking
    Operators" solves with heartbeats: a punctuation on the silent input
    advances its bound without a tuple. *)

type config = {
  n_inputs : int;
  ordered_idx : int;  (** the merge attribute, same index in all inputs *)
  direction : Order_prop.direction;
}

type t

val make : ?forward:(int * Order_prop.direction) list -> config -> t
(** [forward] lists additional fields (beyond [ordered_idx], which is
    always handled) that are monotone in every input stream; the merge
    tracks their per-input low bounds (advanced by both tuples and
    punctuation) and republishes the min as extra punctuation fields, so
    downstream operators keyed on a forwarded field keep receiving
    unblocking bounds through the merge. Fields equal to [ordered_idx]
    are ignored. Default: none (the pre-existing behavior). *)

val op : t -> Operator.t

val buffered : t -> int
(** Total tuples held across input buffers (A3's measurement). *)

val high_water : t -> int
(** Maximum of {!buffered} ever reached. *)

val register_metrics : t -> Gigascope_obs.Metrics.t -> prefix:string -> unit
(** Attach under [prefix]: polled [buffered] and [high_water] gauges plus
    the [reorder_lag] histogram — tuples still buffered at each release,
    i.e. how far the merge had to look to restore order. *)
