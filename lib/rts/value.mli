(** Runtime values carried in stream tuples. *)

type t =
  | Null
  | Bool of bool
  | Int of int  (** covers the DDL's uint/int/time types *)
  | Float of float
  | Str of string
  | Ip of int  (** IPv4 address *)
  | Sketch of Gigascope_sketch.Sketch.t
      (** opaque mergeable sketch state riding between aggregation-tree
          levels; compared and hashed via its canonical encoding *)

val compare : t -> t -> int
(** Total order: [Null] first, then by constructor, then by payload.
    [Int]/[Float] compare numerically against each other so that ordered
    attributes survive arithmetic that changes representation. *)

val equal : t -> t -> bool
val hash : t -> int

val to_float : t -> float option
(** Numeric view of [Int]/[Float]/[Bool]; [None] otherwise. Used for
    ordered-attribute arithmetic (windows, bands). *)

val is_truthy : t -> bool
(** [Bool true], nonzero numbers; everything else false. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val hash_array : t array -> int
(** Hash of a tuple key (group-by keys, direct-mapped LFTA slots). *)

val equal_array : t array -> t array -> bool
