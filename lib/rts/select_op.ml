module Metrics = Gigascope_obs.Metrics

let make ?rejected ?pred ~project ~punct_map () =
  let done_ = ref false in
  let reject () = match rejected with Some c -> Metrics.Counter.incr c | None -> () in
  let on_tuple values ~emit =
    let pass = match pred with None -> true | Some p -> p values in
    if pass then
      match project values with
      | Some out -> ignore (emit (Item.Tuple out))
      | None -> reject ()
    else reject ()
  in
  let on_item ~input:_ item ~emit =
    match item with
    | Item.Tuple values -> on_tuple values ~emit
    | Item.Punct bounds ->
        let translated =
          List.filter_map
            (fun (idx, v) ->
              Option.map (fun out_idx -> (out_idx, v)) (List.assoc_opt idx punct_map))
            bounds
        in
        if translated <> [] then emit (Item.Punct translated)
    | Item.Flush -> emit Item.Flush
    | (Item.Error _ | Item.Gap _) as ctrl -> emit ctrl
    | Item.Eof ->
        if not !done_ then begin
          done_ := true;
          emit Item.Eof
        end
  in
  (* The hot path of the plane: one dispatch filters and projects a whole
     run of tuples. *)
  let on_batch ~input batch ~emit =
    let tuples = Batch.tuples batch in
    for i = 0 to Array.length tuples - 1 do
      on_tuple tuples.(i) ~emit
    done;
    match Batch.ctrl batch with Some ctrl -> on_item ~input ctrl ~emit | None -> ()
  in
  {
    Operator.on_item;
    on_batch = Some on_batch;
    blocked_input = (fun () -> None);
    buffered = (fun () -> 0);
    reset = Some (fun () -> ());
  }
