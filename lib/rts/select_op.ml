module Metrics = Gigascope_obs.Metrics

let make ?rejected ?pred ~project ~punct_map () =
  let done_ = ref false in
  let reject () = match rejected with Some c -> Metrics.Counter.incr c | None -> () in
  let on_item ~input:_ item ~emit =
    match item with
    | Item.Tuple values -> (
        let pass = match pred with None -> true | Some p -> p values in
        if pass then
          match project values with
          | Some out -> ignore (emit (Item.Tuple out))
          | None -> reject ()
        else reject ())
    | Item.Punct bounds ->
        let translated =
          List.filter_map
            (fun (idx, v) ->
              Option.map (fun out_idx -> (out_idx, v)) (List.assoc_opt idx punct_map))
            bounds
        in
        if translated <> [] then emit (Item.Punct translated)
    | Item.Flush -> emit Item.Flush
    | Item.Eof ->
        if not !done_ then begin
          done_ := true;
          emit Item.Eof
        end
  in
  { Operator.on_item; blocked_input = (fun () -> None); buffered = (fun () -> 0) }
