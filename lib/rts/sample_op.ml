module Prng = Gigascope_util.Prng
module Metrics = Gigascope_obs.Metrics

let make ?dropped ~rate ~seed () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Sample_op.make: rate must be in [0,1]";
  let rng = Prng.create seed in
  let done_ = ref false in
  let on_item ~input:_ item ~emit =
    match item with
    | Item.Tuple _ ->
        if Prng.float rng 1.0 < rate then emit item
        else ( match dropped with Some c -> Metrics.Counter.incr c | None -> ())
    | Item.Punct _ | Item.Flush -> emit item
    | Item.Eof ->
        if not !done_ then begin
          done_ := true;
          emit Item.Eof
        end
  in
  { Operator.on_item; blocked_input = (fun () -> None); buffered = (fun () -> 0) }
