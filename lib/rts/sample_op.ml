module Prng = Gigascope_util.Prng
module Metrics = Gigascope_obs.Metrics

let make ?dropped ~rate ~seed () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Sample_op.make: rate must be in [0,1]";
  let rng = Prng.create seed in
  let done_ = ref false in
  let on_item ~input:_ item ~emit =
    match item with
    | Item.Tuple _ ->
        if Prng.float rng 1.0 < rate then emit item
        else ( match dropped with Some c -> Metrics.Counter.incr c | None -> ())
    | Item.Punct _ | Item.Flush | Item.Error _ | Item.Gap _ -> emit item
    | Item.Eof ->
        if not !done_ then begin
          done_ := true;
          emit Item.Eof
        end
  in
  (* The PRNG draws in tuple order, so the batched loop keeps the exact
     per-tuple keep/drop sequence. *)
  let on_batch ~input batch ~emit =
    Array.iter
      (fun values ->
        if Prng.float rng 1.0 < rate then emit (Item.Tuple values)
        else match dropped with Some c -> Metrics.Counter.incr c | None -> ())
      (Batch.tuples batch);
    match Batch.ctrl batch with Some ctrl -> on_item ~input ctrl ~emit | None -> ()
  in
  {
    Operator.on_item;
    on_batch = Some on_batch;
    blocked_input = (fun () -> None);
    buffered = (fun () -> 0);
    reset = None;
  }
