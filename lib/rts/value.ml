module Ipaddr = Gigascope_packet.Ipaddr
module Sketch = Gigascope_sketch.Sketch

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Ip of int
  | Sketch of Sketch.t

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* numeric values share a rank so they compare by value *)
  | Str _ -> 3
  | Ip _ -> 4
  | Sketch _ -> 5

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Ip x, Ip y -> Int.compare x y
  (* canonical encoding: equal sketch states compare equal, and the
     order is total even though the payload is mutable *)
  | Sketch x, Sketch y -> String.compare (Sketch.encode x) (Sketch.encode y)
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Ip i -> Hashtbl.hash (i lxor 0x5bd1e995)
  | Sketch s -> Hashtbl.hash (Sketch.encode s)

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Null | Str _ | Ip _ | Sketch _ -> None

let is_truthy = function
  | Bool b -> b
  | Int i -> i <> 0
  | Float f -> f <> 0.0
  | Null | Str _ | Ip _ | Sketch _ -> false

let pp fmt = function
  | Null -> Format.fprintf fmt "null"
  | Bool b -> Format.fprintf fmt "%b" b
  | Int i -> Format.fprintf fmt "%d" i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Ip i -> Format.fprintf fmt "%s" (Ipaddr.to_string i)
  | Sketch s -> Format.fprintf fmt "<%a>" Sketch.pp s

let to_string v = Format.asprintf "%a" pp v

let hash_array arr =
  let h = ref 0 in
  Array.iter (fun v -> h := (!h * 31) + hash v) arr;
  !h land max_int

let equal_array a b =
  Array.length a = Array.length b
  &&
  let rec go i = i = Array.length a || (equal a.(i) b.(i) && go (i + 1)) in
  go 0
