module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

type kind = Source | Lfta | Hfta

type source = {
  pull : unit -> Item.t option;
  clock : unit -> (int * Value.t) list;
}

type subscriber =
  | Chan of Channel.t
  | Callback of (Item.t -> unit)
  | Batch_callback of (Batch.t -> unit)

type behavior = Src of source | Op of Operator.t

(* Time 1 callback in [cb_sample]: latency measurement costs two clock
   reads, too much for every tuple of a busy subscriber. *)
let cb_sample = 64

type t = {
  name : string;
  kind : kind;
  schema : Schema.t;
  behavior : behavior;
  mutable node_inputs : (t * Channel.t) array;
  mutable subscribers : subscriber list;
  tuples_in : Metrics.Counter.t;
  tuples_out : Metrics.Counter.t;
  service : Metrics.Histogram.t;
  cb_latency : Metrics.Histogram.t;
  mutable cb_seen : int;
  mutable source_done : bool;
  mutable eof_emitted : bool;
  mutable pinned : int option;
  (* Sharded execution: replicas of a query's LFTA→HFTA chain are
     tagged with their shard index so the parallel scheduler spreads
     them over worker domains even though their kind would otherwise
     pin them to the packet path. *)
  mutable shard_id : int option;
  (* Output batch builder: emitted tuples accumulate here until the
     batch size is reached or a control item seals the batch. Sealed
     batches are immutable and delivered once to every subscriber. *)
  mutable batch_size : int;
  mutable out_buf : Value.t array array;
  mutable out_n : int;
  (* Failure model: the supervisor rules on crashes caught in the step
     functions; a poisoned node has announced Error+Eof downstream and
     only drains (discards) its inputs from then on. *)
  mutable supervisor : Supervisor.t option;
  mutable poisoned : bool;
  (* Source-side load shedding: when set, a source discards pulled
     tuples while any subscriber channel sits at or above this fraction
     of its capacity, and announces the discard as an [Item.Gap] once
     pressure clears (or at EOF) — the paper's reported-drop stance. *)
  mutable shed_hw : float option;
  mutable shed_pending : int;
  shed_c : Metrics.Counter.t;
  (* State watchdog: the certified resident-state bound for this node's
     operator (infinity = uncertified) and the slack multiplier that
     arms enforcement (0 = disarmed, the default). A node found holding
     more than bound × slack at the end of a step announces the loss as
     an [Item.Gap] and submits itself to the supervisor as crashed —
     the certificate was violated, so the state (and the operator
     imputed ordering it was derived from) can no longer be trusted. *)
  mutable state_bound : float;
  mutable state_slack : float;
  mutable state_peak : int;
  watchdog_c : Metrics.Counter.t;
  (* Latency observability: sources stamp every [latency_sample]-th
     pulled tuple (0 = off) with the ingest clock; operators propagate
     the first stamp of a consumed batch onto their next emitted tuple
     (consume-once, so a stamp survives aggregation without
     multiplying). [pending_stamp] is the stamp waiting to ride the
     next emitted tuple; [out_stamps] is the builder's parallel stamp
     column, materialized into the sealed batch only when any slot is
     nonzero. Ingest→deliver latency is observed at terminal
     subscribers (callbacks — the app/egress boundary). *)
  mutable latency_sample : int;
  mutable lat_seen : int;
  mutable pending_stamp : int;
  mutable out_stamps : int array;
  mutable out_stamped : bool;
  mutable terminal : bool;
  deliver_latency : Metrics.Histogram.t;
}

let make name kind schema behavior =
  {
    name;
    kind;
    schema;
    behavior;
    node_inputs = [||];
    subscribers = [];
    tuples_in = Metrics.Counter.make ();
    tuples_out = Metrics.Counter.make ();
    service = Metrics.Histogram.make ();
    cb_latency = Metrics.Histogram.make ();
    cb_seen = 0;
    source_done = false;
    eof_emitted = false;
    pinned = None;
    shard_id = None;
    batch_size = 1;
    out_buf = [||];
    out_n = 0;
    supervisor = None;
    poisoned = false;
    shed_hw = None;
    shed_pending = 0;
    shed_c = Metrics.Counter.make ();
    state_bound = infinity;
    state_slack = 0.0;
    state_peak = 0;
    watchdog_c = Metrics.Counter.make ();
    latency_sample = 0;
    lat_seen = 0;
    pending_stamp = 0;
    out_stamps = [||];
    out_stamped = false;
    terminal = false;
    deliver_latency = Metrics.Histogram.make ();
  }

let make_source ~name ~schema source = make name Source schema (Src source)
let make_op ~name ~kind ~schema ~op = make name kind schema (Op op)

let name t = t.name
let set_supervisor t sup = t.supervisor <- sup
let set_shed t hw = t.shed_hw <- hw
let set_state_bound t b = t.state_bound <- (if b >= 0.0 then b else infinity)
let state_bound t = t.state_bound
let set_state_slack t s = t.state_slack <- max 0.0 s
let state_peak t = t.state_peak
let watchdog_trips t = Metrics.Counter.get t.watchdog_c
let set_latency_sample t n = t.latency_sample <- max 0 n
let latency_sample t = t.latency_sample
let is_poisoned t = t.poisoned
let shed_count t = Metrics.Counter.get t.shed_c
let kind t = t.kind
let schema t = t.schema
let placement t = t.pinned
let set_placement t p = t.pinned <- p
let shard t = t.shard_id
let set_shard t s = t.shard_id <- s

let connect ~downstream ~upstream ~capacity =
  let chan =
    Channel.create ~capacity ~name:(Printf.sprintf "%s->%s" upstream.name downstream.name) ()
  in
  downstream.node_inputs <- Array.append downstream.node_inputs [| (upstream, chan) |];
  upstream.subscribers <- upstream.subscribers @ [Chan chan]

let add_subscriber t sub =
  (match sub with
  | Callback _ | Batch_callback _ -> t.terminal <- true
  | Chan _ -> ());
  t.subscribers <- t.subscribers @ [sub]

let inputs t = t.node_inputs

let deliver t batch =
  (* Ingest→deliver latency: at a terminal node (one with an
     application/egress callback) every stamp in the batch closes its
     measurement here, just before the subscriber sees the tuple. *)
  (match Batch.stamps batch with
  | Some st when t.terminal ->
      let now = Clock.now_ns () in
      Array.iter
        (fun s -> if s <> 0 then Metrics.Histogram.observe t.deliver_latency (now -. float_of_int s))
        st
  | Some _ | None -> ());
  List.iter
    (fun sub ->
      match sub with
      | Chan chan -> ignore (Channel.push_batch chan batch)
      | Batch_callback f -> f batch
      | Callback f ->
          Batch.iter batch (fun item ->
              t.cb_seen <- t.cb_seen + 1;
              if t.cb_seen mod cb_sample = 0 then begin
                let t0 = Clock.now_ns () in
                f item;
                Metrics.Histogram.observe t.cb_latency (Clock.now_ns () -. t0)
              end
              else f item))
    t.subscribers

(* Seal the pending tuples into a batch carrying [ctrl] and deliver it.
   A full builder is handed to the batch directly (the next emit
   reallocates it) — at large batch sizes the tuple array lives in the
   major heap, and copying it too would double the GC pressure. *)
let seal t ctrl =
  let full_handoff = t.out_n = Array.length t.out_buf in
  let tuples =
    if full_handoff then begin
      let full = t.out_buf in
      t.out_buf <- [||];
      full
    end
    else Array.sub t.out_buf 0 t.out_n
  in
  let stamps =
    if not t.out_stamped then begin
      (* keep the stamp column the same length as the builder *)
      if full_handoff then t.out_stamps <- [||];
      None
    end
    else if full_handoff then begin
      let full = t.out_stamps in
      t.out_stamps <- [||];
      Some full
    end
    else begin
      let s = Array.sub t.out_stamps 0 t.out_n in
      (* the builder is reused; clear the consumed slots so stale
         stamps never leak into the next batch *)
      Array.fill t.out_stamps 0 t.out_n 0;
      Some s
    end
  in
  t.out_stamped <- false;
  let batch = Batch.make ?stamps tuples ctrl in
  t.out_n <- 0;
  deliver t batch

let flush_out t = if t.out_n > 0 then seal t None

let set_batch t n =
  let n = max 1 n in
  if n <> t.batch_size then begin
    flush_out t;
    t.batch_size <- n;
    t.out_buf <- [||];
    t.out_stamps <- [||]
  end

let batch_size t = t.batch_size

let emit t item =
  match item with
  | Item.Tuple values ->
      Metrics.Counter.incr t.tuples_out;
      if t.batch_size <= 1 then begin
        if t.pending_stamp = 0 then deliver t (Batch.of_item item)
        else begin
          let s = t.pending_stamp in
          t.pending_stamp <- 0;
          deliver t (Batch.make ~stamps:[| s |] [| values |] None)
        end
      end
      else begin
        if Array.length t.out_buf < t.batch_size then begin
          let grown = Array.make t.batch_size [||] in
          Array.blit t.out_buf 0 grown 0 t.out_n;
          t.out_buf <- grown;
          let grown_st = Array.make t.batch_size 0 in
          Array.blit t.out_stamps 0 grown_st 0 (min t.out_n (Array.length t.out_stamps));
          t.out_stamps <- grown_st
        end;
        t.out_buf.(t.out_n) <- values;
        if t.pending_stamp <> 0 then begin
          t.out_stamps.(t.out_n) <- t.pending_stamp;
          t.pending_stamp <- 0;
          t.out_stamped <- true
        end;
        t.out_n <- t.out_n + 1;
        if t.out_n >= t.batch_size then flush_out t
      end
  | Item.Punct _ | Item.Flush | Item.Eof | Item.Error _ | Item.Gap _ ->
      (* Control items seal the batch immediately: they keep their exact
         stream position, and downstream (heartbeat punctuation, wedge
         detection, EOF propagation) never waits on a partial batch. *)
      (match item with Item.Eof -> t.eof_emitted <- true | _ -> ());
      seal t (Some item)

(* Announce the failure downstream and stop producing. Tuples already
   in the output builder were emitted before the crash and are still
   valid; the Error control item seals them into their batch. *)
let poison t msg =
  t.poisoned <- true;
  emit t (Item.Error msg);
  if not t.eof_emitted then emit t Item.Eof;
  match t.behavior with Src _ -> t.source_done <- true | Op _ -> ()

let handle_crash t exn =
  match t.supervisor with
  | None -> raise exn
  | Some sup -> (
      let restartable =
        match t.behavior with
        | Op op -> op.Operator.reset <> None
        | Src _ -> false
      in
      let verdict, msg = Supervisor.on_crash sup ~node:t.name ~restartable exn in
      match verdict with
      | Supervisor.Escalate -> raise (Supervisor.Crashed (t.name, msg))
      | Supervisor.Poison -> poison t msg
      | Supervisor.Retry ->
          (match t.behavior with
          | Op { Operator.reset = Some r; _ } -> r ()
          | Op _ | Src _ -> ());
          (* the crash consumed an unknown slice of the in-flight work *)
          emit t (Item.Gap (-1)))

let over_high_water t frac =
  List.exists
    (function
      | Chan chan ->
          (* A local ring's capacity bounds batches while [length] counts
             items; at batch size 1 (and on promoted cross channels) the
             units agree, and at larger batch sizes the comparison is
             simply a more tolerant high-water mark. *)
          Channel.length chan >= max 1 (int_of_float (frac *. float_of_int (Channel.capacity chan)))
      | Callback _ | Batch_callback _ -> false)
    t.subscribers

let flush_shed_gap t =
  if t.shed_pending > 0 then begin
    let n = t.shed_pending in
    t.shed_pending <- 0;
    emit t (Item.Gap n)
  end

let step_source t ~quantum =
  match t.behavior with
  | Op _ -> false
  | Src src ->
      if t.source_done then false
      else begin
        let produced = ref 0 in
        let continue = ref true in
        (try
           while !continue && !produced < quantum do
             Faults.crash_point ~node:t.name;
             match src.pull () with
             | Some item ->
                 incr produced;
                 let shed =
                   Item.is_tuple item
                   && match t.shed_hw with Some f -> over_high_water t f | None -> false
                 in
                 if shed then begin
                   t.shed_pending <- t.shed_pending + 1;
                   Metrics.Counter.incr t.shed_c
                 end
                 else begin
                   flush_shed_gap t;
                   if t.latency_sample > 0 && Item.is_tuple item then begin
                     t.lat_seen <- t.lat_seen + 1;
                     if t.lat_seen >= t.latency_sample then begin
                       t.lat_seen <- 0;
                       t.pending_stamp <- int_of_float (Clock.now_ns ())
                     end
                   end;
                   emit t item
                 end
             | None ->
                 t.source_done <- true;
                 continue := false;
                 flush_shed_gap t;
                 emit t Item.Eof
           done
         with exn ->
           continue := false;
           handle_crash t exn);
        (* Flush-on-idle: a partial batch never outlives the step that
           built it, so batching adds at most one scheduler round of
           latency when input is sparse. *)
        flush_out t;
        !produced > 0
      end

(* A poisoned node has already announced Error+Eof; it keeps consuming
   (and discarding) its inputs so upstream nodes never wedge against a
   full channel into a dead consumer, and the completion check's
   channels-empty condition still holds. *)
let drain_poisoned t ~quantum =
  let progress = ref false in
  Array.iter
    (fun (_, chan) ->
      let consumed = ref 0 in
      let continue = ref true in
      while !continue && !consumed < quantum do
        match Channel.pop_batch chan with
        | Some batch ->
            consumed := !consumed + Batch.items batch;
            progress := true
        | None -> continue := false
      done)
    t.node_inputs;
  !progress

(* End-of-step state enforcement. The quantum bounds how far past the
   limit a node can get within one step, so checking between steps is
   enough. The Gap announcing the discarded state must precede the
   Error/Eof that poisoning emits — downstream accounting then sees
   the loss before the stream closes. *)
let check_watchdog t =
  let held = match t.behavior with Op op -> op.Operator.buffered () | Src _ -> 0 in
  if held > t.state_peak then t.state_peak <- held;
  if (not t.poisoned) && t.state_slack > 0.0 && Float.is_finite t.state_bound then begin
    let limit = Float.max 1.0 (t.state_bound *. t.state_slack) in
    if float_of_int held > limit then begin
      Metrics.Counter.incr t.watchdog_c;
      emit t (Item.Gap held);
      handle_crash t
        (Failure
           (Printf.sprintf
              "state watchdog: %d items held, past certified bound %.0f × slack %g" held
              t.state_bound t.state_slack))
    end
  end

let step_inputs t ~quantum =
  match t.behavior with
  | Src _ -> false
  | Op _ when t.poisoned -> drain_poisoned t ~quantum
  | Op op ->
      let progress = ref false in
      (try
         Array.iteri
           (fun i (_, chan) ->
             let consumed = ref 0 in
             let continue = ref true in
             while !continue && !consumed < quantum do
               match Channel.pop_batch chan with
               | Some batch ->
                   (* Whole batches only: the quantum is checked between
                      batches, so a large batch can overshoot it by one
                      batch — the output is quantum-independent either
                      way. *)
                   consumed := !consumed + Batch.items batch;
                   progress := true;
                   let nt = Batch.n_tuples batch in
                   if nt > 0 then Metrics.Counter.add t.tuples_in nt;
                   (* Stamp propagation (consume-once): the first stamp
                      of a consumed batch rides this node's next emitted
                      tuple. One input stamp yields at most one output
                      stamp, so the sample rate stays roughly stable
                      through filters and aggregates alike. *)
                   (match Batch.stamps batch with
                   | Some st when t.pending_stamp = 0 ->
                       let n = Array.length st in
                       let rec first j =
                         if j >= n then 0 else if st.(j) <> 0 then st.(j) else first (j + 1)
                       in
                       let s = first 0 in
                       if s <> 0 then t.pending_stamp <- s
                   | Some _ | None -> ());
                   Faults.crash_point ~node:t.name;
                   Operator.apply_batch op ~input:i batch ~emit:(emit t)
               | None -> continue := false
             done)
           t.node_inputs
       with exn -> handle_crash t exn);
      flush_out t;
      check_watchdog t;
      !progress

let exhausted t =
  match t.behavior with Src _ -> t.source_done | Op _ -> t.eof_emitted

let blocked_input t =
  match t.behavior with Src _ -> None | Op op -> op.Operator.blocked_input ()

let heartbeat t =
  match t.behavior with
  | Op _ -> ()
  | Src src ->
      if not t.source_done then begin
        let bounds = src.clock () in
        if bounds <> [] then emit t (Item.Punct bounds)
      end

let inject_flush t =
  match t.behavior with
  | Src _ -> ()
  | Op op ->
      op.Operator.on_item ~input:0 Item.Flush ~emit:(emit t);
      (* Operators that swallow Flush (merge) may still have emitted
         tuples; don't leave them in the builder. *)
      flush_out t

let tuples_in t = Metrics.Counter.get t.tuples_in
let tuples_out t = Metrics.Counter.get t.tuples_out

let buffered t =
  match t.behavior with Src _ -> 0 | Op op -> op.Operator.buffered ()

let input_drops t =
  Array.fold_left (fun acc (_, chan) -> acc + Channel.drops chan) 0 t.node_inputs

let record_service t dt_ns = Metrics.Histogram.observe t.service dt_ns

let register_metrics t reg =
  let pfx = "rts.node." ^ t.name in
  Metrics.attach_counter reg (pfx ^ ".tuples_in") t.tuples_in;
  Metrics.attach_counter reg (pfx ^ ".tuples_out") t.tuples_out;
  Metrics.attach_gauge_fn reg (pfx ^ ".buffered") (fun () -> float_of_int (buffered t));
  Metrics.attach_histogram reg (pfx ^ ".service_ns") t.service;
  Metrics.attach_histogram reg (pfx ^ ".callback_ns") t.cb_latency;
  Metrics.attach_counter reg ("rts.shed." ^ t.name) t.shed_c;
  Metrics.attach_histogram reg ("rts.latency." ^ t.name) t.deliver_latency;
  (* State accounting: resident operator state vs its certified bound
     (infinity until the engine installs a certificate), plus watchdog
     trips. *)
  let spfx = "rts.state." ^ t.name in
  Metrics.attach_gauge_fn reg (spfx ^ ".used") (fun () -> float_of_int (buffered t));
  Metrics.attach_gauge_fn reg (spfx ^ ".peak") (fun () -> float_of_int t.state_peak);
  Metrics.attach_gauge_fn reg (spfx ^ ".bound") (fun () -> t.state_bound);
  Metrics.attach_counter reg (spfx ^ ".trips") t.watchdog_c
