module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

type kind = Source | Lfta | Hfta

type source = {
  pull : unit -> Item.t option;
  clock : unit -> (int * Value.t) list;
}

type subscriber = Chan of Channel.t | Callback of (Item.t -> unit)

type behavior = Src of source | Op of Operator.t

(* Time 1 callback in [cb_sample]: latency measurement costs two clock
   reads, too much for every tuple of a busy subscriber. *)
let cb_sample = 64

type t = {
  name : string;
  kind : kind;
  schema : Schema.t;
  behavior : behavior;
  mutable node_inputs : (t * Channel.t) array;
  mutable subscribers : subscriber list;
  tuples_in : Metrics.Counter.t;
  tuples_out : Metrics.Counter.t;
  service : Metrics.Histogram.t;
  cb_latency : Metrics.Histogram.t;
  mutable cb_seen : int;
  mutable source_done : bool;
  mutable eof_emitted : bool;
  mutable pinned : int option;
  (* Output batch builder: emitted tuples accumulate here until the
     batch size is reached or a control item seals the batch. Sealed
     batches are immutable and delivered once to every subscriber. *)
  mutable batch_size : int;
  mutable out_buf : Value.t array array;
  mutable out_n : int;
}

let make name kind schema behavior =
  {
    name;
    kind;
    schema;
    behavior;
    node_inputs = [||];
    subscribers = [];
    tuples_in = Metrics.Counter.make ();
    tuples_out = Metrics.Counter.make ();
    service = Metrics.Histogram.make ();
    cb_latency = Metrics.Histogram.make ();
    cb_seen = 0;
    source_done = false;
    eof_emitted = false;
    pinned = None;
    batch_size = 1;
    out_buf = [||];
    out_n = 0;
  }

let make_source ~name ~schema source = make name Source schema (Src source)
let make_op ~name ~kind ~schema ~op = make name kind schema (Op op)

let name t = t.name
let kind t = t.kind
let schema t = t.schema
let placement t = t.pinned
let set_placement t p = t.pinned <- p

let connect ~downstream ~upstream ~capacity =
  let chan =
    Channel.create ~capacity ~name:(Printf.sprintf "%s->%s" upstream.name downstream.name) ()
  in
  downstream.node_inputs <- Array.append downstream.node_inputs [| (upstream, chan) |];
  upstream.subscribers <- upstream.subscribers @ [Chan chan]

let add_subscriber t sub = t.subscribers <- t.subscribers @ [sub]

let inputs t = t.node_inputs

let deliver t batch =
  List.iter
    (fun sub ->
      match sub with
      | Chan chan -> ignore (Channel.push_batch chan batch)
      | Callback f ->
          Batch.iter batch (fun item ->
              t.cb_seen <- t.cb_seen + 1;
              if t.cb_seen mod cb_sample = 0 then begin
                let t0 = Clock.now_ns () in
                f item;
                Metrics.Histogram.observe t.cb_latency (Clock.now_ns () -. t0)
              end
              else f item))
    t.subscribers

(* Seal the pending tuples into a batch carrying [ctrl] and deliver it.
   A full builder is handed to the batch directly (the next emit
   reallocates it) — at large batch sizes the tuple array lives in the
   major heap, and copying it too would double the GC pressure. *)
let seal t ctrl =
  let tuples =
    if t.out_n = Array.length t.out_buf then begin
      let full = t.out_buf in
      t.out_buf <- [||];
      full
    end
    else Array.sub t.out_buf 0 t.out_n
  in
  let batch = Batch.make tuples ctrl in
  t.out_n <- 0;
  deliver t batch

let flush_out t = if t.out_n > 0 then seal t None

let set_batch t n =
  let n = max 1 n in
  if n <> t.batch_size then begin
    flush_out t;
    t.batch_size <- n;
    t.out_buf <- [||]
  end

let batch_size t = t.batch_size

let emit t item =
  match item with
  | Item.Tuple values ->
      Metrics.Counter.incr t.tuples_out;
      if t.batch_size <= 1 then deliver t (Batch.of_item item)
      else begin
        if Array.length t.out_buf < t.batch_size then begin
          let grown = Array.make t.batch_size [||] in
          Array.blit t.out_buf 0 grown 0 t.out_n;
          t.out_buf <- grown
        end;
        t.out_buf.(t.out_n) <- values;
        t.out_n <- t.out_n + 1;
        if t.out_n >= t.batch_size then flush_out t
      end
  | Item.Punct _ | Item.Flush | Item.Eof ->
      (* Control items seal the batch immediately: they keep their exact
         stream position, and downstream (heartbeat punctuation, wedge
         detection, EOF propagation) never waits on a partial batch. *)
      (match item with Item.Eof -> t.eof_emitted <- true | _ -> ());
      seal t (Some item)

let step_source t ~quantum =
  match t.behavior with
  | Op _ -> false
  | Src src ->
      if t.source_done then false
      else begin
        let produced = ref 0 in
        let continue = ref true in
        while !continue && !produced < quantum do
          match src.pull () with
          | Some item ->
              incr produced;
              emit t item
          | None ->
              t.source_done <- true;
              continue := false;
              emit t Item.Eof
        done;
        (* Flush-on-idle: a partial batch never outlives the step that
           built it, so batching adds at most one scheduler round of
           latency when input is sparse. *)
        flush_out t;
        !produced > 0
      end

let step_inputs t ~quantum =
  match t.behavior with
  | Src _ -> false
  | Op op ->
      let progress = ref false in
      Array.iteri
        (fun i (_, chan) ->
          let consumed = ref 0 in
          let continue = ref true in
          while !continue && !consumed < quantum do
            match Channel.pop_batch chan with
            | Some batch ->
                (* Whole batches only: the quantum is checked between
                   batches, so a large batch can overshoot it by one
                   batch — the output is quantum-independent either
                   way. *)
                consumed := !consumed + Batch.items batch;
                progress := true;
                let nt = Batch.n_tuples batch in
                if nt > 0 then Metrics.Counter.add t.tuples_in nt;
                Operator.apply_batch op ~input:i batch ~emit:(emit t)
            | None -> continue := false
          done)
        t.node_inputs;
      flush_out t;
      !progress

let exhausted t =
  match t.behavior with Src _ -> t.source_done | Op _ -> t.eof_emitted

let blocked_input t =
  match t.behavior with Src _ -> None | Op op -> op.Operator.blocked_input ()

let heartbeat t =
  match t.behavior with
  | Op _ -> ()
  | Src src ->
      if not t.source_done then begin
        let bounds = src.clock () in
        if bounds <> [] then emit t (Item.Punct bounds)
      end

let inject_flush t =
  match t.behavior with
  | Src _ -> ()
  | Op op ->
      op.Operator.on_item ~input:0 Item.Flush ~emit:(emit t);
      (* Operators that swallow Flush (merge) may still have emitted
         tuples; don't leave them in the builder. *)
      flush_out t

let tuples_in t = Metrics.Counter.get t.tuples_in
let tuples_out t = Metrics.Counter.get t.tuples_out

let buffered t =
  match t.behavior with Src _ -> 0 | Op op -> op.Operator.buffered ()

let input_drops t =
  Array.fold_left (fun acc (_, chan) -> acc + Channel.drops chan) 0 t.node_inputs

let record_service t dt_ns = Metrics.Histogram.observe t.service dt_ns

let register_metrics t reg =
  let pfx = "rts.node." ^ t.name in
  Metrics.attach_counter reg (pfx ^ ".tuples_in") t.tuples_in;
  Metrics.attach_counter reg (pfx ^ ".tuples_out") t.tuples_out;
  Metrics.attach_gauge_fn reg (pfx ^ ".buffered") (fun () -> float_of_int (buffered t));
  Metrics.attach_histogram reg (pfx ^ ".service_ns") t.service;
  Metrics.attach_histogram reg (pfx ^ ".callback_ns") t.cb_latency
