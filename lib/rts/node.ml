module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

type kind = Source | Lfta | Hfta

type source = {
  pull : unit -> Item.t option;
  clock : unit -> (int * Value.t) list;
}

type subscriber = Chan of Channel.t | Callback of (Item.t -> unit)

type behavior = Src of source | Op of Operator.t

(* Time 1 callback in [cb_sample]: latency measurement costs two clock
   reads, too much for every tuple of a busy subscriber. *)
let cb_sample = 64

type t = {
  name : string;
  kind : kind;
  schema : Schema.t;
  behavior : behavior;
  mutable node_inputs : (t * Channel.t) array;
  mutable subscribers : subscriber list;
  tuples_in : Metrics.Counter.t;
  tuples_out : Metrics.Counter.t;
  service : Metrics.Histogram.t;
  cb_latency : Metrics.Histogram.t;
  mutable cb_seen : int;
  mutable source_done : bool;
  mutable eof_emitted : bool;
  mutable pinned : int option;
}

let make name kind schema behavior =
  {
    name;
    kind;
    schema;
    behavior;
    node_inputs = [||];
    subscribers = [];
    tuples_in = Metrics.Counter.make ();
    tuples_out = Metrics.Counter.make ();
    service = Metrics.Histogram.make ();
    cb_latency = Metrics.Histogram.make ();
    cb_seen = 0;
    source_done = false;
    eof_emitted = false;
    pinned = None;
  }

let make_source ~name ~schema source = make name Source schema (Src source)
let make_op ~name ~kind ~schema ~op = make name kind schema (Op op)

let name t = t.name
let kind t = t.kind
let schema t = t.schema
let placement t = t.pinned
let set_placement t p = t.pinned <- p

let connect ~downstream ~upstream ~capacity =
  let chan =
    Channel.create ~capacity ~name:(Printf.sprintf "%s->%s" upstream.name downstream.name) ()
  in
  downstream.node_inputs <- Array.append downstream.node_inputs [| (upstream, chan) |];
  upstream.subscribers <- upstream.subscribers @ [Chan chan]

let add_subscriber t sub = t.subscribers <- t.subscribers @ [sub]

let inputs t = t.node_inputs

let emit t item =
  (match item with
  | Item.Tuple _ -> Metrics.Counter.incr t.tuples_out
  | Item.Eof -> t.eof_emitted <- true
  | Item.Punct _ | Item.Flush -> ());
  List.iter
    (fun sub ->
      match sub with
      | Chan chan -> ignore (Channel.push chan item)
      | Callback f ->
          t.cb_seen <- t.cb_seen + 1;
          if t.cb_seen mod cb_sample = 0 then begin
            let t0 = Clock.now_ns () in
            f item;
            Metrics.Histogram.observe t.cb_latency (Clock.now_ns () -. t0)
          end
          else f item)
    t.subscribers

let step_source t ~quantum =
  match t.behavior with
  | Op _ -> false
  | Src src ->
      if t.source_done then false
      else begin
        let produced = ref 0 in
        let continue = ref true in
        while !continue && !produced < quantum do
          match src.pull () with
          | Some item ->
              incr produced;
              emit t item
          | None ->
              t.source_done <- true;
              continue := false;
              emit t Item.Eof
        done;
        !produced > 0
      end

let step_inputs t ~quantum =
  match t.behavior with
  | Src _ -> false
  | Op op ->
      let progress = ref false in
      Array.iteri
        (fun i (_, chan) ->
          let consumed = ref 0 in
          let continue = ref true in
          while !continue && !consumed < quantum do
            match Channel.pop chan with
            | Some item ->
                incr consumed;
                progress := true;
                if Item.is_tuple item then Metrics.Counter.incr t.tuples_in;
                op.Operator.on_item ~input:i item ~emit:(emit t)
            | None -> continue := false
          done)
        t.node_inputs;
      !progress

let exhausted t =
  match t.behavior with Src _ -> t.source_done | Op _ -> t.eof_emitted

let blocked_input t =
  match t.behavior with Src _ -> None | Op op -> op.Operator.blocked_input ()

let heartbeat t =
  match t.behavior with
  | Op _ -> ()
  | Src src ->
      if not t.source_done then begin
        let bounds = src.clock () in
        if bounds <> [] then emit t (Item.Punct bounds)
      end

let inject_flush t =
  match t.behavior with
  | Src _ -> ()
  | Op op -> op.Operator.on_item ~input:0 Item.Flush ~emit:(emit t)

let tuples_in t = Metrics.Counter.get t.tuples_in
let tuples_out t = Metrics.Counter.get t.tuples_out

let buffered t =
  match t.behavior with Src _ -> 0 | Op op -> op.Operator.buffered ()

let input_drops t =
  Array.fold_left (fun acc (_, chan) -> acc + Channel.drops chan) 0 t.node_inputs

let record_service t dt_ns = Metrics.Histogram.observe t.service dt_ns

let register_metrics t reg =
  let pfx = "rts.node." ^ t.name in
  Metrics.attach_counter reg (pfx ^ ".tuples_in") t.tuples_in;
  Metrics.attach_counter reg (pfx ^ ".tuples_out") t.tuples_out;
  Metrics.attach_gauge_fn reg (pfx ^ ".buffered") (fun () -> float_of_int (buffered t));
  Metrics.attach_histogram reg (pfx ^ ".service_ns") t.service;
  Metrics.attach_histogram reg (pfx ^ ".callback_ns") t.cb_latency
