(** Aggregate functions and their sub/super-aggregate decomposition.

    When the splitter pushes an aggregation down into an LFTA, each
    aggregate is decomposed like a data-cube sub/super-aggregate pair
    (Section 3): the LFTA computes partials over whatever groups survive in
    its small table, and the HFTA combines partials into the true result.
    [Avg] needs two partials (sum and count).

    Sketch aggregates generalize the same algebra to approximate
    summaries: the sub-aggregate folds raw values into a mergeable
    sketch and emits the sketch state itself ([partial = true]); every
    level above merges incoming states ([Sketch.merge] is commutative
    and associative), and only the top level renders an estimate
    ([partial = false]). Because the partial state is a single opaque
    value, N-level aggregation trees need no per-kind knowledge beyond
    this module. *)

type sketch_spec =
  | Distinct of { precision : int }  (** HyperLogLog approximate COUNT(DISTINCT x) *)
  | Heavy of { k : int }  (** space-saving top-k heavy hitters *)
  | Freq of { eps : float; delta : float }  (** count-min frequency sketch *)

type kind =
  | Count
  | Sum
  | Min
  | Max
  | Avg
  | Sketch of { sk : sketch_spec; partial : bool }
      (** [partial = true]: emit the sketch state for an upper level to
          merge; [partial = false]: render the estimate. *)

type spec = {
  kind : kind;
  arg : (Value.t array -> Value.t option) option;
      (** argument expression; [None] only for [Count] *)
}

type acc
(** One group's accumulator for one aggregate. *)

val init : kind -> acc
val step : acc -> Value.t option -> unit
(** [step acc v] folds one tuple's argument value ([None] for [Count]
    steps the count). [Null] arguments are skipped, as in SQL. A sketch
    accumulator folds a raw value by canonicalizing it into the sketch,
    and a [Value.Sketch] argument (a lower level's partial) by merging
    it — an incompatible state is skipped, mirroring how [Sum] skips a
    string. *)

val final : acc -> Value.t
(** [Count] of nothing is 0; [Sum]/[Min]/[Max]/[Avg] of nothing is
    [Null]. A partial sketch finalizes to a copied [Value.Sketch]; a
    non-partial one to its estimate ([Int] for distinct/frequency
    counts, a ["item:count,..."] [Str] for heavy hitters). *)

val merge_partial : acc -> acc -> unit
(** [merge_partial acc other] folds [other]'s state into [acc], so that
    splitting a group's tuples across accumulators and merging them is
    indistinguishable from stepping them all into one accumulator —
    the algebraic property that makes sharded sub-aggregation correct.
    [other] is not mutated. Both accumulators must be of the same
    [kind]. Caveat: for float [Sum]/[Avg] the merged result can differ
    from the unsplit one in the last ulp (float addition is not
    associative). Sketch accumulators delegate to [Sketch.merge_into],
    whose laws are exact. *)

val sub_kinds : kind -> kind list
(** Partials the LFTA computes: e.g. [Avg -> [Sum; Count]]; a sketch
    kind's single partial is itself with [partial = true]. *)

val super_kind : kind -> kind list
(** How the HFTA combines each partial: e.g. [Count -> [Sum]] (counts are
    summed), [Min -> [Min]]. Same length as [sub_kinds]. *)

val relay_kind : kind -> kind
(** How an intermediate tree level re-aggregates one partial column so
    its output is again a partial of the same shape: counts are summed,
    extrema re-taken, sketch states merged and re-emitted as state.
    Defined on the kinds [sub_kinds] can produce ([Avg] never appears
    there and maps to itself). *)

val combine_avg : sum:Value.t -> count:Value.t -> Value.t
(** Final assembly of a split [Avg]. *)

val result_ty : kind -> arg_ty:Ty.t option -> Ty.t
(** Static type of [final]'s value: [Count] and the non-partial
    distinct/frequency sketches are [Int], [Avg] is [Float], heavy
    hitters render as [Str], partial sketches are [Ty.Sketch], and
    [Sum]/[Min]/[Max] take their argument's type. *)

val kind_to_string : kind -> string
