(** Aggregate functions and their sub/super-aggregate decomposition.

    When the splitter pushes an aggregation down into an LFTA, each
    aggregate is decomposed like a data-cube sub/super-aggregate pair
    (Section 3): the LFTA computes partials over whatever groups survive in
    its small table, and the HFTA combines partials into the true result.
    [Avg] needs two partials (sum and count). *)

type kind = Count | Sum | Min | Max | Avg

type spec = {
  kind : kind;
  arg : (Value.t array -> Value.t option) option;
      (** argument expression; [None] only for [Count] *)
}

type acc
(** One group's accumulator for one aggregate. *)

val init : kind -> acc
val step : acc -> Value.t option -> unit
(** [step acc v] folds one tuple's argument value ([None] for [Count]
    steps the count). [Null] arguments are skipped, as in SQL. *)

val final : acc -> Value.t
(** [Count] of nothing is 0; [Sum]/[Min]/[Max]/[Avg] of nothing is
    [Null]. *)

val merge_partial : acc -> acc -> unit
(** [merge_partial acc other] folds [other]'s state into [acc], so that
    splitting a group's tuples across accumulators and merging them is
    indistinguishable from stepping them all into one accumulator —
    the algebraic property that makes sharded sub-aggregation correct.
    [other] is not mutated. Both accumulators must be of the same
    [kind]. Caveat: for float [Sum]/[Avg] the merged result can differ
    from the unsplit one in the last ulp (float addition is not
    associative). *)

val sub_kinds : kind -> kind list
(** Partials the LFTA computes: e.g. [Avg -> [Sum; Count]]. *)

val super_kind : kind -> kind list
(** How the HFTA combines each partial: e.g. [Count -> [Sum]] (counts are
    summed), [Min -> [Min]]. Same length as [sub_kinds]. *)

val combine_avg : sum:Value.t -> count:Value.t -> Value.t
(** Final assembly of a split [Avg]. *)

val kind_to_string : kind -> string
