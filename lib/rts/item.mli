(** Items flowing through stream channels.

    Besides data tuples, channels carry {e punctuations} — the
    ordering-update tokens of Tucker & Maier that Gigascope injects to
    unblock merge and join when an input is slow — and an end-of-stream
    marker.

    The failure model adds two more control kinds: [Error] marks a
    stream whose producer crashed (it is always followed by [Eof], so
    downstream terminates normally but knows the result is partial),
    and [Gap] marks a known discontinuity — [n] tuples were lost here
    (shed, dropped on a closed channel, or unrecoverable after a
    reconnect). [Gap (-1)] means the count is unknown. Both mirror the
    paper's stance that loss must be {e reported}, never silent. *)

type t =
  | Tuple of Value.t array
  | Punct of (int * Value.t) list
      (** lower bounds: no future tuple's field [i] will be below (for
          ascending attributes) the paired value *)
  | Flush  (** operator hint: flush open state now (user-requested) *)
  | Eof
  | Error of string
      (** upstream failure marker; the producing subtree is dead and an
          [Eof] follows — results downstream of this point are partial *)
  | Gap of int
      (** [Gap n]: [n] tuples are missing at this stream position;
          [n < 0] when the count is unknown *)

val is_tuple : t -> bool

val punct_bound : t -> int -> Value.t option
(** The bound a punctuation carries for field [i], if any. *)

val pp : Format.formatter -> t -> unit
