(** Two-stream windowed join.

    GSQL requires the join predicate to constrain an ordered attribute from
    {e each} input, e.g. [B.ts = C.ts] or [B.ts >= C.ts - 1 and
    B.ts <= C.ts + 1]; the constraint defines a join window that bounds the
    state both sides must buffer (Section 2.1). Tuples outside any possible
    future window are purged as the opposite side's low bound advances; a
    punctuation advances the bound without a tuple, unblocking a join whose
    one side is slow. *)

(** The choice the paper's Section 2.1 discusses: with [Banded] output,
    matches are emitted in probe order and a projected ordered attribute is
    only banded by the window span; [Ordered] buffers matches and releases
    them in left-attribute order (monotone output), at the cost of more
    buffer space. *)
type output_mode = Banded_output | Ordered_output

type config = {
  output_mode : output_mode;
  left_idx : int;  (** ordered attribute of input 0 *)
  right_idx : int;  (** ordered attribute of input 1 *)
  lo : float;
  hi : float;
      (** window: a pair joins only if
          [left.ts - right.ts] ∈ \[[lo], [hi]\]; equality join is [0., 0.] *)
  pred : Value.t array -> Value.t array -> bool;
      (** the full join predicate over (left, right) *)
  assemble : Value.t array -> Value.t array -> Value.t array option;
      (** output projection; [None] (partial function) drops the pair *)
  left_out : int option;  (** where input 0's ordered attr lands in the output *)
  right_out : int option;
}

type t

val make : config -> t
val op : t -> Operator.t

val buffered : t -> int
(** Input-side tuples plus (in [Ordered_output] mode) held output
    matches. *)

val high_water : t -> int

val register_metrics : t -> Gigascope_obs.Metrics.t -> prefix:string -> unit
(** Attach under [prefix]: polled gauges for the per-side window state
    ([window_left], [window_right]), the ordered-output hold heap
    ([held]), and the buffering [high_water]. *)
