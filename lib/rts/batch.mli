(** Vectorized item flow: the unit the batched data plane moves.

    A batch is a run of consecutive tuples plus at most one trailing
    control item ({!Item.Punct}, {!Item.Flush} or {!Item.Eof}). Control
    items always {e seal} the batch carrying them, so they keep their
    exact position in the stream: flattening a channel's batch sequence
    with {!to_items} yields the same item sequence whatever the batch
    size. That invariant is what keeps batched execution byte-identical
    to tuple-at-a-time execution (see DESIGN.md §14).

    Batches are immutable once built and may be shared by every
    subscriber of a node.

    Latency stamps: a batch may carry an optional parallel column of
    ingest timestamps ({!Obs.Clock.now_ns} truncated to an integer
    nanosecond count), one slot per tuple, 0 meaning "unstamped". Only
    a sampled subset of tuples is ever stamped, so most batches carry
    [None] and pay nothing. The column is pure metadata: it never
    affects the item sequence, operator semantics, or the
    byte-identity differentials. *)

type t

val make : ?stamps:int array -> Value.t array array -> Item.t option -> t
(** [make ?stamps tuples ctrl]. Raises [Invalid_argument] if [ctrl] is
    a tuple, or if [stamps] is present with a length different from
    the tuple count. The tuple (and stamp) arrays are owned by the
    batch afterwards. *)

val of_item : Item.t -> t
(** A singleton batch — how the item-level channel API is expressed on
    the batched transport. *)

val of_items : Item.t list -> t
(** Rebuild from a list in batch shape (tuples first, then at most one
    trailing control item); raises [Invalid_argument] otherwise.
    Stamps, if the items came from a stamped batch, are not
    reconstructed — the remainder path is best-effort for the sampled
    measurement. *)

val tuples : t -> Value.t array array

val stamps : t -> int array option
(** The ingest-stamp column, if any tuple in the batch was sampled.
    Same length as {!tuples}; 0 = unstamped. *)

val ctrl : t -> Item.t option

val n_tuples : t -> int

val items : t -> int
(** Tuples plus the control item, if present — the unit channel
    capacity and quantum accounting are measured in. *)

val is_empty : t -> bool

val iter : t -> (Item.t -> unit) -> unit
(** Visit the batch as items, tuples first then the control item — the
    per-tuple fallback path for operators without a batch
    implementation. *)

val to_items : t -> Item.t list

val pp : Format.formatter -> t -> unit
