type t = Bool | Int | Float | Str | Ip | Sketch

let of_value = function
  | Value.Null -> None
  | Value.Bool _ -> Some Bool
  | Value.Int _ -> Some Int
  | Value.Float _ -> Some Float
  | Value.Str _ -> Some Str
  | Value.Ip _ -> Some Ip
  | Value.Sketch _ -> Some Sketch

let value_matches ty v =
  match of_value v with None -> true | Some vty -> vty = ty

let is_numeric = function Int | Float -> true | Bool | Str | Ip | Sketch -> false

let of_ddl_name = function
  | "bool" -> Some Bool
  | "int" | "uint" | "time" | "llong" | "ushort" | "ubyte" -> Some Int
  | "float" -> Some Float
  | "string" -> Some Str
  | "ip" -> Some Ip
  | _ -> None

let to_string = function
  | Bool -> "bool"
  | Int -> "int"
  | Float -> "float"
  | Str -> "string"
  | Ip -> "ip"
  | Sketch -> "sketch"

let pp fmt t = Format.pp_print_string fmt (to_string t)
