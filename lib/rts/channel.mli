(** Stream channels between query nodes.

    Models the shared-memory ring buffers of the real system: bounded FIFO
    with drop accounting (the paper's performance metric is precisely "how
    high can the input rate be before tuples drop"). *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** Default capacity 4096 items. *)

val name : t -> string
val push : t -> Item.t -> bool
(** False (and a counted drop) when full — except [Eof], which is always
    accepted by evicting the newest item if necessary, so a full channel
    cannot wedge shutdown. *)

val pop : t -> Item.t option
val peek : t -> Item.t option
val length : t -> int
val is_empty : t -> bool

val tuples_in : t -> int
(** Tuples successfully enqueued (punctuation and EOF not counted). *)

val drops : t -> int
(** Items rejected by a full ring (tuples and punctuation alike). *)

val high_water : t -> int

val register_metrics : t -> Gigascope_obs.Metrics.t -> prefix:string -> unit
(** Attach this channel's counters ([tuples_in], [drops]) and polled gauges
    ([depth], [high_water]) under [prefix]. The cells are the channel's own
    accounting — {!tuples_in} and {!drops} read the same counters — so
    registration adds no cost to {!push}. *)
