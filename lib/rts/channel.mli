(** Stream channels between query nodes.

    Models the shared-memory ring buffers of the real system: bounded FIFO
    with drop accounting (the paper's performance metric is precisely "how
    high can the input rate be before tuples drop").

    The transport unit is a {!Batch}: one ring slot holds one batch, so a
    run of tuples costs one push and one pop however long it is. The
    item-level {!push}/{!pop}/{!peek} API is kept for tests and
    applications as singleton-batch wrappers; flattening the batch
    sequence always yields the same item sequence the tuple-at-a-time
    plane carried. A Local ring's capacity bounds {e batches}, so the
    item capacity scales with the batch size; drop accounting is always
    per item. *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** Default capacity 4096 batches (= items at batch size 1). *)

val name : t -> string
val capacity : t -> int

val push_batch : t -> Batch.t -> bool
(** Local channels: false when full, counting every tuple the batch
    carried (plus a non-Eof control item) as drops — except a batch
    sealed by [Eof], whose control item is always delivered (tuples
    dropped, a buffered batch evicted if necessary) so a full channel
    cannot wedge shutdown. Channels promoted by {!promote_cross} block
    instead of dropping (backpressure across the domain boundary) and
    refuse only once closed. *)

val push : t -> Item.t -> bool
(** {!push_batch} of a singleton batch — item-at-a-time behaviour,
    byte-for-byte the pre-batching semantics. *)

val pop_batch : t -> Batch.t option
(** Dequeue one batch. If the item-level {!pop} partially consumed a
    batch, its remainder is returned first. *)

val pop : t -> Item.t option
val peek : t -> Item.t option

val length : t -> int
(** Buffered items (tuples plus control items), including the remainder
    of a partially consumed batch. *)

val is_empty : t -> bool

val tuples_in : t -> int
(** Tuples successfully enqueued (punctuation and EOF not counted). *)

val drops : t -> int
(** Items rejected by a full ring, counted {e per item}: a rejected
    batch adds every tuple it contained. *)

val high_water : t -> int
(** Local channels: ring slots (batches); promoted channels: items. *)

val promote_cross : ?capacity:int -> t -> Xchannel.t
(** Switch this channel's transport to a bounded SPSC cross-domain
    channel (idempotent; buffered batches — and any partially consumed
    remainder — carry over in order). [capacity] defaults to the
    channel's own; the parallel scheduler passes a small bound so
    backpressure keeps producer and consumer domains rate-matched — the
    paper's fixed-size ring buffers between the runtime process and each
    HFTA process (Section 2.2). It is clamped up to whatever is already
    buffered, since promotion happens on one domain before any worker
    spawns and a blocking push here could never be drained. Called on
    edges whose endpoints land on different domains. *)

val is_cross : t -> bool

val cross : t -> Xchannel.t option
(** The cross-domain transport, once promoted. *)

val register_metrics : t -> Gigascope_obs.Metrics.t -> prefix:string -> unit
(** Attach this channel's counters ([tuples_in], [drops]), polled gauges
    ([depth], [high_water]) and the [batch_items] occupancy histogram
    (items per pushed batch) under [prefix]. The cells are the channel's
    own accounting — {!tuples_in} and {!drops} read the same counters —
    so registration adds no cost to {!push_batch}. *)
