(** Stream channels between query nodes.

    Models the shared-memory ring buffers of the real system: bounded FIFO
    with drop accounting (the paper's performance metric is precisely "how
    high can the input rate be before tuples drop"). *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** Default capacity 4096 items. *)

val name : t -> string
val capacity : t -> int

val push : t -> Item.t -> bool
(** Local channels: false (and a counted drop) when full — except [Eof],
    which is always accepted by evicting the newest item if necessary, so
    a full channel cannot wedge shutdown. Channels promoted by
    {!promote_cross} block instead of dropping (backpressure across the
    domain boundary) and refuse only once closed. *)

val pop : t -> Item.t option
val peek : t -> Item.t option
val length : t -> int
val is_empty : t -> bool

val tuples_in : t -> int
(** Tuples successfully enqueued (punctuation and EOF not counted). *)

val drops : t -> int
(** Items rejected by a full ring (tuples and punctuation alike). *)

val high_water : t -> int

val promote_cross : ?capacity:int -> t -> Xchannel.t
(** Switch this channel's transport to a bounded SPSC cross-domain
    channel (idempotent; buffered items carry over). [capacity] defaults
    to the channel's own; the parallel scheduler passes a small bound so
    backpressure keeps producer and consumer domains rate-matched — the
    paper's fixed-size ring buffers between the runtime process and each
    HFTA process (Section 2.2). It is clamped up to whatever is already
    buffered, since promotion happens on one domain before any worker
    spawns and a blocking push here could never be drained. Called on
    edges whose endpoints land on different domains. *)

val is_cross : t -> bool

val cross : t -> Xchannel.t option
(** The cross-domain transport, once promoted. *)

val register_metrics : t -> Gigascope_obs.Metrics.t -> prefix:string -> unit
(** Attach this channel's counters ([tuples_in], [drops]) and polled gauges
    ([depth], [high_water]) under [prefix]. The cells are the channel's own
    accounting — {!tuples_in} and {!drops} read the same counters — so
    registration adds no cost to {!push}. *)
