module Prng = Gigascope_util.Prng

exception Injected of string

type mode = Nth of int | Prob of float

type clause = {
  kind : string;
  target : string;  (* node/channel name; "" for connection-level points *)
  mode : mode;
  ms : float;  (* delay/stall duration, milliseconds *)
}

type t = { seed : int; clauses : clause list }

(* Mutable firing state lives beside the plan: per-point hit counters for
   [Nth] clauses and per-point generators for [Prob] clauses. Each
   generator is seeded from the global seed and the point's identity, so
   whether a probabilistic point fires depends only on (seed, point, hit
   number) — never on how points interleave across threads or domains.
   That is what makes a chaos run replayable. *)
type state = {
  plan : t;
  mu : Mutex.t;
  hits : (string, int ref) Hashtbl.t;
  rngs : (string, Prng.t) Hashtbl.t;
}

let installed : state option Atomic.t = Atomic.make None

let install plan =
  Atomic.set installed
    (Some { plan; mu = Mutex.create (); hits = Hashtbl.create 16; rngs = Hashtbl.create 16 })

let clear () = Atomic.set installed None
let active () = Atomic.get installed <> None
let current () = match Atomic.get installed with Some st -> Some st.plan | None -> None

(* ------------------------------ parsing --------------------------------- *)

let clause_to_string c =
  let tgt = if c.target = "" then "" else c.target ^ ":" in
  let suffix = if c.kind = "delay" || c.kind = "stall" then Printf.sprintf ":%g" c.ms else "" in
  match c.mode with
  | Nth n -> Printf.sprintf "%s=%s%d%s" c.kind tgt n suffix
  | Prob p -> Printf.sprintf "%s~%s%g%s" c.kind tgt p suffix

let to_string t =
  String.concat ","
    (Printf.sprintf "seed=%d" t.seed :: List.map clause_to_string t.clauses)

let targeted = [ "crash"; "stall"; "xclose" ]
let global = [ "torn"; "drop"; "delay"; "disconnect" ]

let parse spec =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let parse_clause acc part =
    match acc with
    | Error _ as e -> e
    | Ok (seed, clauses) -> (
        let part = String.trim part in
        if part = "" then Ok (seed, clauses)
        else
          let kind, mode_char, rest =
            match (String.index_opt part '=', String.index_opt part '~') with
            | Some i, Some j when j < i ->
                (String.sub part 0 j, '~', String.sub part (j + 1) (String.length part - j - 1))
            | Some i, _ ->
                (String.sub part 0 i, '=', String.sub part (i + 1) (String.length part - i - 1))
            | None, Some j ->
                (String.sub part 0 j, '~', String.sub part (j + 1) (String.length part - j - 1))
            | None, None -> (part, '?', "")
          in
          let kind = String.lowercase_ascii (String.trim kind) in
          if mode_char = '?' then fail "fault clause %S: expected kind=value or kind~prob" part
          else if kind = "seed" then
            match int_of_string_opt (String.trim rest) with
            | Some s -> Ok (s, clauses)
            | None -> fail "fault seed %S is not an integer" rest
          else
            let is_targeted = List.mem kind targeted in
            if not (is_targeted || List.mem kind global) then
              fail "unknown fault kind %S (crash|stall|xclose|torn|drop|delay|disconnect|seed)" kind
            else
              let fields = String.split_on_char ':' rest in
              let target, fields =
                if is_targeted then
                  match fields with
                  | tgt :: rest when String.trim tgt <> "" -> (String.trim tgt, rest)
                  | _ -> ("", fields)
                else ("", fields)
              in
              if is_targeted && target = "" then
                fail "fault %s needs a target: %s=NAME:N" kind kind
              else
                let num, ms_field =
                  match fields with
                  | [ n ] -> (Some n, None)
                  | [ n; ms ] -> (Some n, Some ms)
                  | _ -> (None, None)
                in
                match num with
                | None -> fail "fault clause %S: expected %s%c<n>[:ms]" part kind mode_char
                | Some n -> (
                    let ms =
                      match ms_field with
                      | None -> if kind = "delay" || kind = "stall" then 20.0 else 0.0
                      | Some s -> ( match float_of_string_opt (String.trim s) with
                          | Some f -> f
                          | None -> -1.0)
                    in
                    if ms < 0.0 then fail "fault clause %S: bad milliseconds" part
                    else
                      match mode_char with
                      | '=' -> (
                          match int_of_string_opt (String.trim n) with
                          | Some k when k >= 1 ->
                              Ok (seed, { kind; target; mode = Nth k; ms } :: clauses)
                          | _ -> fail "fault clause %S: hit count must be a positive integer" part)
                      | _ -> (
                          match float_of_string_opt (String.trim n) with
                          | Some p when p >= 0.0 && p <= 1.0 ->
                              Ok (seed, { kind; target; mode = Prob p; ms } :: clauses)
                          | _ -> fail "fault clause %S: probability must be in [0,1]" part)))
  in
  match List.fold_left parse_clause (Ok (0, [])) (String.split_on_char ',' spec) with
  | Error _ as e -> e
  | Ok (seed, clauses) -> Ok { seed; clauses = List.rev clauses }

(* ------------------------------ firing ---------------------------------- *)

(* One shared hit counter per point key: a [crash=n:3] clause fires on the
   third time *that node* reaches the crash point, whichever thread gets
   it there. *)
let fires st clause key =
  Mutex.lock st.mu;
  let hit =
    match Hashtbl.find_opt st.hits key with
    | Some r ->
        incr r;
        !r
    | None ->
        Hashtbl.replace st.hits key (ref 1);
        1
  in
  let result =
    match clause.mode with
    | Nth k -> hit = k
    | Prob p ->
        let rng =
          match Hashtbl.find_opt st.rngs key with
          | Some r -> r
          | None ->
              let r = Prng.create (st.plan.seed lxor Hashtbl.hash key) in
              Hashtbl.replace st.rngs key r;
              r
        in
        Prng.float rng 1.0 < p
  in
  Mutex.unlock st.mu;
  result

let lookup kind target =
  match Atomic.get installed with
  | None -> []
  | Some st ->
      List.filter_map
        (fun c ->
          if c.kind = kind && (c.target = "" || c.target = target) then Some (st, c) else None)
        st.plan.clauses

let crash_point ~node =
  List.iter
    (fun (st, c) ->
      if fires st c ("crash/" ^ node) then
        raise (Injected (Printf.sprintf "injected crash at %s" node)))
    (lookup "crash" node)

let stall_point ~chan =
  List.iter
    (fun (st, c) -> if fires st c ("stall/" ^ chan) then Thread.delay (c.ms /. 1000.0))
    (lookup "stall" chan)

let xclose_point ~chan close =
  List.iter
    (fun (st, c) -> if fires st c ("xclose/" ^ chan) then close ())
    (lookup "xclose" chan)

(* Connection-level verdict for one outgoing frame. At most one action
   fires per frame, checked in severity order. [Torn n] asks the sender
   to write only the first [n] bytes and then fail the connection — the
   peer sees a truncated frame, exactly the torn-write case the decoder's
   Need_more/Corrupt handling must absorb. *)
type send_action = Pass | Torn of int | Drop | Delay of float | Disconnect

let send_point ~peer ~len =
  let check kind mk =
    List.fold_left
      (fun acc (st, c) ->
        match acc with Some _ -> acc | None -> if fires st c (kind ^ "/" ^ peer) then Some (mk c) else None)
      None (lookup kind "")
  in
  match check "disconnect" (fun _ -> Disconnect) with
  | Some a -> a
  | None -> (
      match check "torn" (fun _ -> Torn (max 1 (len / 2))) with
      | Some a -> a
      | None -> (
          match check "drop" (fun _ -> Drop) with
          | Some a -> a
          | None -> (
              match check "delay" (fun c -> Delay (c.ms /. 1000.0)) with
              | Some a -> a
              | None -> Pass)))

let install_env () =
  match Sys.getenv_opt "GIGASCOPE_FAULTS" with
  | None | Some "" -> Ok false
  | Some spec -> (
      match parse spec with
      | Ok plan ->
          install plan;
          Ok true
      | Error e -> Error (Printf.sprintf "GIGASCOPE_FAULTS: %s" e))
