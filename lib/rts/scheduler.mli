(** Cooperative execution of the query network.

    Round-robin over registered nodes in topological order: sources
    produce a quantum of items, query nodes drain a quantum from each
    input. After each round, operators that report a blocked input get
    heartbeats requested on their behalf (the "on-demand" ordering-update
    tokens of Section 3), propagated upstream to the sources, whose clocks
    answer with punctuations.

    A run completes when every source is exhausted, every channel drained,
    and EOF has propagated to the sinks. *)

type stats = {
  rounds : int;
  heartbeat_requests : int;
}

val run :
  ?quantum:int ->
  ?max_rounds:int ->
  ?heartbeats:bool ->
  ?heartbeat_period:int ->
  ?on_round:(int -> unit) ->
  ?trace:bool ->
  Manager.t ->
  (stats, string) result
(** [quantum] (default 64) items per node per round; [max_rounds] (default
    10_000_000) guards against wedged networks; [heartbeats] (default true)
    enables on-demand punctuation (requested by blocked operators);
    [heartbeat_period] additionally fires every source's clock punctuation
    every N rounds — the periodic injection of Tucker & Maier that the
    paper contrasts with its on-demand scheme; [on_round] runs after each
    round — the hook through which a live application changes query
    parameters or flushes queries mid-stream. Implies
    {!Manager.start}.

    The run feeds the manager's metrics registry: [rts.scheduler.rounds]
    and [rts.scheduler.heartbeat_requests] counters, plus each node's
    [service_ns] histogram. Service times are sampled (one round in 8);
    [trace] (default false) times {e every} round instead, for
    EXPLAIN-ANALYZE-grade per-operator cost ({!Manager.trace_report}).
    The effective sampling period is published as the
    [rts.scheduler.service_sample] gauge. *)

val request_heartbeat : Node.t -> unit
(** Walk upstream from the node and fire every source's clock punctuation
    (exposed for tests and custom drivers). *)
