(** Cooperative execution of the query network.

    Round-robin over registered nodes in topological order: sources
    produce a quantum of items, query nodes drain a quantum from each
    input. After each round, operators that report a blocked input get
    heartbeats requested on their behalf (the "on-demand" ordering-update
    tokens of Section 3), propagated upstream to the sources, whose clocks
    answer with punctuations.

    A run completes when every source is exhausted, every channel drained,
    and EOF has propagated to the sinks. *)

type stats = {
  rounds : int;
  heartbeat_requests : int;
}

val run :
  ?quantum:int ->
  ?max_rounds:int ->
  ?heartbeats:bool ->
  ?heartbeat_period:int ->
  ?on_round:(int -> unit) ->
  ?trace:bool ->
  ?batch:int ->
  ?supervisor:Supervisor.t ->
  ?shed:float ->
  ?latency_sample:int ->
  ?state_slack:float ->
  Manager.t ->
  (stats, string) result
(** [state_slack] (default 0 = off) arms the per-node state watchdog
    ({!Node.set_state_slack}): a query node holding more than its
    certified bound × slack is treated as crashed (Gap announced, then
    the supervisor's verdict — poison/escalate — applies). Nodes
    without a certified bound are never checked.

    [latency_sample] (default 0 = off) arms end-to-end latency
    measurement ({!Node.set_latency_sample}): every N-th source tuple
    is stamped at ingest, the stamp rides the batched data plane, and
    ingest→deliver durations land in each terminal node's
    [rts.latency.<name>] histogram. The interval is published as the
    [rts.scheduler.latency_sample] gauge.

    [supervisor] installs crash supervision on every node
    ({!Node.set_supervisor}); a [Fail_fast] escalation surfaces as this
    function's [Error] result instead of an exception. [shed] arms
    source-side load shedding at that high-water fraction
    ({!Node.set_shed}).

    [batch] (default 1) sets every node's output batch size
    ({!Node.set_batch}): tuples move through channels in runs of up to
    [batch], sealed early by any control item and flushed at the end of
    every node step, so the emitted item sequence — and therefore the
    subscriber output — is byte-identical for every batch size. The
    effective size is published as the [rts.scheduler.batch] gauge.
    The {e default} quantum is floored at [batch] so a large batch is
    not flushed early; an explicit [quantum] wins (round-indexed hooks
    keep their round structure) at the price of partial batches.

    [quantum] (default [max 64 batch]) items per node per round; [max_rounds] (default
    10_000_000) bounds scheduling iterations as a wedge guard;
    [heartbeats] (default true) enables on-demand punctuation (requested
    by blocked operators); [heartbeat_period] additionally fires every
    source's clock punctuation every N iterations — the periodic
    injection of Tucker & Maier that the paper contrasts with its
    on-demand scheme; [on_round] runs after each scheduling iteration —
    the hook through which a live application changes query parameters or
    flushes queries mid-stream. Implies {!Manager.start}.

    The run feeds the manager's metrics registry: [rts.scheduler.rounds]
    and [rts.scheduler.heartbeat_requests] counters, plus each node's
    [service_ns] histogram. [rounds] (the stat and the metric) counts
    only {e productive} rounds — iterations in which some node moved at
    least one item; iterations where every node is blocked awaiting
    heartbeat punctuation are scheduling overhead, not progress, and are
    not counted. Service times are sampled (one round in 8); [trace]
    (default false) times {e every} round instead, for
    EXPLAIN-ANALYZE-grade per-operator cost ({!Manager.trace_report}).
    The effective sampling period is published as the
    [rts.scheduler.service_sample] gauge. *)

val run_parallel :
  ?quantum:int ->
  ?max_rounds:int ->
  ?heartbeats:bool ->
  ?heartbeat_period:int ->
  ?trace:bool ->
  ?placement:(string * int) list ->
  ?batch:int ->
  ?supervisor:Supervisor.t ->
  ?shed:float ->
  ?latency_sample:int ->
  ?state_slack:float ->
  domains:int ->
  Manager.t ->
  (stats, string) result
(** Multicore execution: the paper's process-per-HFTA architecture
    (Section 2.2) mapped onto OCaml domains. Domain 0 (the caller) runs
    the sources and LFTAs — the packet path; each HFTA runs on one of
    [domains - 1] worker domains as a pipeline stage (see {!partition}),
    unless pinned by [placement] (node name → domain index; modulo
    [domains]) or a prior {!Node.set_placement}. Channels crossing a
    domain boundary are promoted to blocking cross-domain channels
    ({!Xchannel}) — the inter-process "shared memory" edges get
    backpressure instead of drops, and their metrics move under
    [rts.xchannel.*]. A [placement] whose domain graph is cyclic is
    rejected with an error: bounded blocking channels would deadlock on
    such a cycle.

    Blocked HFTAs on worker domains still get on-demand heartbeats: the
    request is queued to domain 0, which owns the source clocks.

    [domains <= 1] degrades to {!run} (same semantics, zero spawns).
    The returned stats count domain 0's productive rounds only; worker
    progress shows up in node and channel metrics. On any domain's error
    the run aborts all domains and returns the first error. A wedged
    network (no domain can make progress, nothing pending anywhere — e.g.
    with [heartbeats:false], or an operator that never completes) is
    detected by a cross-domain termination probe and reported as the
    same wedge error {!run} produces, never as a hang. Publishes the
    [rts.scheduler.domains] gauge.

    Parallel output is deterministic: every operator's emitted tuple
    sequence depends only on its per-channel input tuple sequences, not
    on punctuation timing or domain interleaving, so a parallel run
    produces byte-identical subscriber output to a single-threaded run
    (verified by test/test_parallel.ml).

    [batch] behaves as in {!run}; one cross-domain push then moves a
    whole batch under a single lock acquire, and the cross-channel
    capacity is clamped up so it always holds at least two batches. *)

val request_heartbeat : Node.t -> unit
(** Walk upstream from the node and fire every source's clock punctuation
    (exposed for tests and custom drivers). *)

val partition : domains:int -> Node.t list -> (Node.t list array, string) result
(** Assign nodes to execution domains ([nodes] in registration order,
    which is topological). Sources and LFTAs land on domain 0; unpinned
    HFTAs become pipeline stages: a stage never lands on a lower-numbered
    worker than its upstream HFTAs, so every cross-domain edge ascends
    and the domain graph is acyclic — the property that keeps the
    blocking cross-domain channels deadlock-free. Explicit placements
    ({!Node.set_placement}) are honoured verbatim; if they make the
    domain graph cyclic the partition is rejected ([Error] naming the
    cycle). Exposed for tests. *)
