type output_mode = Banded_output | Ordered_output

type config = {
  output_mode : output_mode;
  left_idx : int;
  right_idx : int;
  lo : float;
  hi : float;
  pred : Value.t array -> Value.t array -> bool;
  assemble : Value.t array -> Value.t array -> Value.t array option;
  left_out : int option;
  right_out : int option;
}

type side_state = {
  buffer : Value.t array Queue.t;  (** in arrival (hence timestamp) order *)
  mutable bound : float;  (** low bound on future ordered values *)
  mutable eof : bool;
}

module Metrics = Gigascope_obs.Metrics

type t = {
  cfg : config;
  left : side_state;
  right : side_state;
  held : Value.t array Gigascope_util.Minheap.t;
      (** Ordered_output: matches waiting for the watermark, keyed by the
          left ordered value *)
  mutable high_water : int;
  mutable done_ : bool;
}

let make cfg =
  if cfg.lo > cfg.hi then invalid_arg "Join_op.make: empty window (lo > hi)";
  {
    cfg;
    left = { buffer = Queue.create (); bound = neg_infinity; eof = false };
    right = { buffer = Queue.create (); bound = neg_infinity; eof = false };
    held = Gigascope_util.Minheap.create ();
    high_water = 0;
    done_ = false;
  }

let buffered t =
  Queue.length t.left.buffer + Queue.length t.right.buffer
  + Gigascope_util.Minheap.length t.held

let ts_of values idx =
  match Value.to_float values.(idx) with
  | Some f -> f
  | None -> nan (* non-numeric ordered attr: window never matches *)

(* Saturating window arithmetic. With an infinite window bound
   (windowless join admitted under --allow-unbounded), an EOF side's
   infinite bound would otherwise combine into inf + -inf = NaN, and a
   NaN watermark never releases held pairs — silent output loss. A
   bound that is already infinite stays infinite. *)
let sat_add a b = if a = infinity || b = infinity then infinity else a +. b
let sat_sub a b = if a = infinity then infinity else a -. b

(* Purge buffered tuples that no future opposite tuple can reach.
   A left tuple at lt joins rights in [lt - hi, lt - lo]; future rights are
   >= right.bound, so lt is dead once lt < right.bound + lo. Symmetric for
   rights: dead once rt < left.bound - hi. EOF makes the bound infinite. *)
let purge t =
  let left_bound = if t.left.eof then infinity else t.left.bound in
  let right_bound = if t.right.eof then infinity else t.right.bound in
  let drop_while q dead =
    let continue = ref true in
    while !continue && not (Queue.is_empty q) do
      if dead (Queue.peek q) then ignore (Queue.pop q) else continue := false
    done
  in
  drop_while t.left.buffer (fun v -> ts_of v t.cfg.left_idx < sat_add right_bound t.cfg.lo);
  drop_while t.right.buffer (fun v -> ts_of v t.cfg.right_idx < sat_sub left_bound t.cfg.hi)

(* No future output pair can carry a left ordered value below this: future
   left arrivals are >= left.bound, and a buffered left tuple matching a
   future right must be >= right.bound + lo. *)
let output_watermark t =
  let lb = if t.left.eof then infinity else t.left.bound in
  let rb = if t.right.eof then infinity else t.right.bound in
  Float.min lb (sat_add rb t.cfg.lo)

let compare_rows a b =
  let n = Array.length a and m = Array.length b in
  let rec go i =
    if i >= n || i >= m then compare n m
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Strictly below the watermark, as a whole batch, content-sorted.
   Both points matter for determinism: the heap breaks equal-priority
   ties by insertion order, which depends on probe interleaving, and a
   non-strict gate can release part of an equal-key group now and the
   rest after more input arrives — at a split point that also depends on
   interleaving. Strict release keeps every equal-key group intact until
   the watermark passes it, and the content sort fixes its internal
   order. *)
let release t ~emit =
  match t.cfg.output_mode with
  | Banded_output -> ()
  | Ordered_output ->
      let wm = output_watermark t in
      let batch = ref [] in
      let continue = ref true in
      while !continue do
        match Gigascope_util.Minheap.min t.held with
        | Some (key, _) when key < wm -> (
            match Gigascope_util.Minheap.pop t.held with
            | Some entry -> batch := entry :: !batch
            | None -> continue := false)
        | _ -> continue := false
      done;
      if !batch <> [] then
        List.iter
          (fun (_, out) -> ignore (emit (Item.Tuple out)))
          (List.sort
             (fun (ka, a) (kb, b) ->
               let c = Float.compare ka kb in
               if c <> 0 then c else compare_rows a b)
             !batch)

let produce t ~left_ts out ~emit =
  match t.cfg.output_mode with
  | Banded_output -> ignore (emit (Item.Tuple out))
  | Ordered_output -> Gigascope_util.Minheap.add t.held ~prio:left_ts out

let probe t ~from_left values ~emit =
  let cfg = t.cfg in
  if from_left then begin
    let lt = ts_of values cfg.left_idx in
    Queue.iter
      (fun right ->
        let rt = ts_of right cfg.right_idx in
        let d = lt -. rt in
        if d >= cfg.lo && d <= cfg.hi && cfg.pred values right then
          match cfg.assemble values right with
          | Some out -> produce t ~left_ts:lt out ~emit
          | None -> ())
      t.right.buffer
  end
  else begin
    let rt = ts_of values cfg.right_idx in
    Queue.iter
      (fun left ->
        let lt = ts_of left cfg.left_idx in
        let d = lt -. rt in
        if d >= cfg.lo && d <= cfg.hi && cfg.pred left values then
          match cfg.assemble left values with
          | Some out -> produce t ~left_ts:lt out ~emit
          | None -> ())
      t.left.buffer
  end

let emit_punct t ~emit =
  (* The raw side bounds are unsound here: a held Ordered_output pair
     whose left key trails left.bound would be emitted after a punctuation
     claiming that bound, and even in Banded_output a future pair's right
     value can be as low as left.bound - hi. What is truly final is the
     output watermark of each projected side. *)
  let lb = if t.left.eof then infinity else t.left.bound in
  let rb = if t.right.eof then infinity else t.right.bound in
  let left_wm = Float.min lb (sat_add rb t.cfg.lo) in
  let right_wm = Float.min rb (sat_sub lb t.cfg.hi) in
  let bounds =
    List.filter_map Fun.id
      [
        Option.map (fun out -> (out, Value.Float left_wm)) t.cfg.left_out;
        Option.map (fun out -> (out, Value.Float right_wm)) t.cfg.right_out;
      ]
  in
  let finite = List.filter (fun (_, v) -> match v with Value.Float f -> Float.is_finite f | _ -> true) bounds in
  if finite <> [] then emit (Item.Punct finite)

let op t =
  let cfg = t.cfg in
  let on_item ~input item ~emit =
    let side, idx, from_left =
      if input = 0 then (t.left, cfg.left_idx, true) else (t.right, cfg.right_idx, false)
    in
    (match item with
    | Item.Tuple values ->
        let ts = ts_of values idx in
        if ts > side.bound then side.bound <- ts;
        probe t ~from_left values ~emit;
        Queue.push values side.buffer;
        purge t;
        let b = buffered t in
        if b > t.high_water then t.high_water <- b
    | Item.Punct bounds -> (
        match List.assoc_opt idx bounds with
        | Some v -> (
            match Value.to_float v with
            | Some f ->
                if f > side.bound then side.bound <- f;
                purge t;
                (* Release before punctuating: held pairs below the new
                   watermark must leave ahead of the punctuation that
                   declares them final. *)
                release t ~emit;
                emit_punct t ~emit
            | None -> ())
        | None -> ())
    | Item.Flush -> ()
    | Item.Eof ->
        side.eof <- true;
        purge t
    | (Item.Error _ | Item.Gap _) as ctrl -> emit ctrl);
    release t ~emit;
    let b = buffered t in
    if b > t.high_water then t.high_water <- b;
    if (not t.done_) && t.left.eof && t.right.eof then begin
      t.done_ <- true;
      release t ~emit;
      emit Item.Eof
    end
  in
  (* Batched path: probe/buffer/purge per tuple (preserving the purge
     invariant that no held pair ever falls below the current output
     watermark), with the Ordered_output release deferred to the end of
     the run. Deferring is output-identical: the watermark only grows,
     every new pair's key is at or above it, and release takes strictly
     below it — so per-tuple releases occupy disjoint ascending key
     ranges and their concatenation equals one release at the final
     watermark. *)
  let on_batch ~input batch ~emit =
    let side, idx, from_left =
      if input = 0 then (t.left, cfg.left_idx, true) else (t.right, cfg.right_idx, false)
    in
    let tuples = Batch.tuples batch in
    let n = Array.length tuples in
    if n > 0 then begin
      for i = 0 to n - 1 do
        let values = tuples.(i) in
        let ts = ts_of values idx in
        if ts > side.bound then side.bound <- ts;
        probe t ~from_left values ~emit;
        Queue.push values side.buffer;
        purge t
      done;
      let b = buffered t in
      if b > t.high_water then t.high_water <- b
    end;
    match Batch.ctrl batch with
    | Some ctrl -> on_item ~input ctrl ~emit
    | None ->
        release t ~emit;
        let b = buffered t in
        if b > t.high_water then t.high_water <- b
  in
  let blocked_input () =
    let starving st = Queue.is_empty st.buffer && not st.eof in
    if (not (Queue.is_empty t.left.buffer)) && starving t.right then Some 1
    else if (not (Queue.is_empty t.right.buffer)) && starving t.left then Some 0
    else None
  in
  {
    Operator.on_item;
    on_batch = Some on_batch;
    blocked_input;
    buffered = (fun () -> buffered t);
    reset = None;
  }

let high_water t = t.high_water

let register_metrics t reg ~prefix =
  Metrics.attach_gauge_fn reg (prefix ^ ".window_left") (fun () ->
      float_of_int (Queue.length t.left.buffer));
  Metrics.attach_gauge_fn reg (prefix ^ ".window_right") (fun () ->
      float_of_int (Queue.length t.right.buffer));
  Metrics.attach_gauge_fn reg (prefix ^ ".held") (fun () ->
      float_of_int (Gigascope_util.Minheap.length t.held));
  Metrics.attach_gauge_fn reg (prefix ^ ".high_water") (fun () -> float_of_int t.high_water)
