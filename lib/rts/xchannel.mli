(** Bounded SPSC cross-domain channel (mutex + condvar).

    The parallel scheduler's replacement for the shared-memory ring
    between an LFTA and an HFTA when the two run on different OCaml
    domains. Unlike {!Channel}, which drops on overflow (a slow HFTA must
    not stall the packet path within one domain), the cross-domain edge
    blocks the producer — backpressure instead of loss — and accounts the
    stall time in [blocked_ns]. Drops happen only after {!close} (error
    shutdown), so a crashed consumer domain cannot wedge its producer.

    Single producer, single consumer: the owning domains of the two
    endpoint nodes. {!pop}/{!peek} are non-blocking; a consumer with
    nothing to read parks on its {!Domain_runner} signal, which
    [on_push] pokes. *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** Default capacity 4096 items, matching {!Channel}. *)

val name : t -> string
val capacity : t -> int

val set_on_push : t -> (unit -> unit) -> unit
(** Hook run after every successful push (and after {!close}), outside
    the channel lock — the consumer domain's wakeup. Set before the
    consumer domain spawns. *)

val push : t -> Item.t -> bool
(** Blocks while the channel is full. False (and a counted drop, except
    for [Eof]) only when the channel is closed. *)

val pop : t -> Item.t option
(** Non-blocking; signals a producer waiting on a full channel. *)

val peek : t -> Item.t option
(** Non-blocking; stable only for the consumer domain (SPSC). *)

val length : t -> int
val is_empty : t -> bool

val close : t -> unit
(** Mark closed and wake a blocked producer; subsequent pushes are
    dropped. Used for error propagation from a crashed domain. Items
    already queued remain poppable. *)

val is_closed : t -> bool

val high_water : t -> int
val tuples_in : t -> int
val drops : t -> int

val blocked_ns : t -> int
(** Cumulative nanoseconds producers spent blocked on a full channel. *)

val register_metrics : t -> Gigascope_obs.Metrics.t -> prefix:string -> unit
(** Attach [tuples_in], [drops] and [blocked_ns] counters plus polled
    [depth] and [high_water] gauges under [prefix] (the manager uses
    [rts.xchannel.<from>-><to>]). *)
