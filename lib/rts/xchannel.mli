(** Bounded SPSC cross-domain channel (mutex + condvar) carrying batches.

    The parallel scheduler's replacement for the shared-memory ring
    between an LFTA and an HFTA when the two run on different OCaml
    domains. Unlike {!Channel}, which drops on overflow (a slow HFTA must
    not stall the packet path within one domain), the cross-domain edge
    blocks the producer — backpressure instead of loss — and accounts the
    stall time in [blocked_ns]. Drops happen only after {!close} (error
    shutdown), so a crashed consumer domain cannot wedge its producer.

    The transport unit is a {!Batch}: one lock acquire, one queue
    operation and one condvar signal move a whole run of tuples across
    the domain boundary. Capacity, depth and high-water are measured in
    {e items} (tuples plus control items), matching {!Channel}; a batch
    is admitted whole once any room exists, so depth can briefly
    overshoot the capacity by one batch.

    Single producer, single consumer: the owning domains of the two
    endpoint nodes. {!pop}/{!peek} are non-blocking; a consumer with
    nothing to read parks on its {!Domain_runner} signal, which
    [on_push] pokes. *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** Default capacity 4096 items, matching {!Channel}. *)

val name : t -> string
val capacity : t -> int

val set_on_push : t -> (unit -> unit) -> unit
(** Hook run after every successful push (and after {!close}), outside
    the channel lock — the consumer domain's wakeup. Set before the
    consumer domain spawns. *)

val push_batch : t -> Batch.t -> bool
(** Blocks while the channel is full. False (and counted drops — the
    batch's tuples plus a non-Eof control item) only when the channel is
    closed. *)

val push : t -> Item.t -> bool
(** {!push_batch} of a singleton batch. *)

val pop_batch : t -> Batch.t option
(** Non-blocking; signals a producer waiting on a full channel. When the
    item-level {!pop} has partially consumed a batch, the remainder is
    returned first. *)

val pop : t -> Item.t option
(** Item-level view of {!pop_batch}: consumes one item at a time. *)

val peek : t -> Item.t option
(** Non-blocking; stable only for the consumer domain (SPSC). *)

val length : t -> int
(** Buffered items (tuples plus control items). *)

val is_empty : t -> bool

val close : t -> unit
(** Mark closed and wake a blocked producer; subsequent pushes are
    dropped. Used for error propagation from a crashed domain. Items
    already queued remain poppable. *)

val is_closed : t -> bool

val high_water : t -> int
val tuples_in : t -> int
val drops : t -> int

val blocked_ns : t -> int
(** Cumulative nanoseconds producers spent blocked on a full channel. *)

val register_metrics : t -> Gigascope_obs.Metrics.t -> prefix:string -> unit
(** Attach [tuples_in], [drops] and [blocked_ns] counters, polled
    [depth] and [high_water] gauges, and the [batch_items] occupancy
    histogram (items per pushed batch) under [prefix] (the manager uses
    [rts.xchannel.<from>-><to>]). *)
