(** The stream manager: Gigascope's central registry.

    Query nodes register here by name; applications and other query nodes
    subscribe to a name and get a channel back ("the process then contacts
    the query node to set up communication through shared memory; the
    stream manager does not track the connection further", Section 3).

    The LFTA batch restriction is enforced: because LFTAs are linked into
    the runtime (and possibly the NIC), they must all be submitted before
    {!start}; HFTAs can be added at any point. *)

type t

val create : ?default_capacity:int -> unit -> t
(** [default_capacity] (default 4096) sizes channels created by
    {!add_query_node} and {!subscribe}. *)

val functions : t -> Func.registry
(** The function registry, pre-populated with {!Builtin_funcs}. *)

val metrics : t -> Gigascope_obs.Metrics.t
(** The manager's metrics registry. Every node registered here attaches
    its cells under [rts.node.<name>], every channel (inter-node and
    application subscription) under [rts.chan.<from>-><to>], and the
    scheduler its round/service-time metrics under [rts.scheduler]. *)

val add_source : t -> name:string -> schema:Schema.t -> Node.source -> (Node.t, string) result
(** Sources are bound before start, like LFTAs. *)

val add_query_node :
  t ->
  name:string ->
  kind:Node.kind ->
  schema:Schema.t ->
  inputs:string list ->
  op:Operator.t ->
  (Node.t, string) result
(** Registers the node and subscribes it to each named input, in order.
    To pin the node to an execution domain for {!Scheduler.run_parallel},
    call {!Node.set_placement} on the result. Errors: duplicate name;
    unknown input; an LFTA (or a source) added after {!start}; an LFTA
    reading from anything but a source. *)

val add_query_node_sized :
  t ->
  capacity:int option ->
  name:string ->
  kind:Node.kind ->
  schema:Schema.t ->
  inputs:string list ->
  op:Operator.t ->
  (Node.t, string) result
(** {!add_query_node} with an explicit input-ring capacity. [Some c]
    only ever {e grows} the rings past [default_capacity] — the
    certified-burst auto-sizing path: an upstream whose single-step
    emission (an LFTA table flush, a merge drain) exceeds the default
    ring would otherwise drop tuples. [None] = default. *)

val register_xchannel_metrics : t -> Xchannel.t -> unit
(** Attach a promoted cross-domain channel's cells under
    [rts.xchannel.<from>-><to>] (suffix-deduped like [rts.chan]). Called
    by {!Scheduler.run_parallel} at promotion time. *)

val find : t -> string -> Node.t option
val nodes : t -> Node.t list
(** In registration (hence topological) order. *)

val subscribe : t -> ?capacity:int -> string -> (Channel.t, string) result
(** Application-side subscription: returns the channel to drain. *)

val on_item : t -> string -> (Item.t -> unit) -> (unit, string) result
(** Callback subscription (never drops). *)

val on_batch : t -> string -> (Batch.t -> unit) -> (unit, string) result
(** Whole-batch callback subscription (never drops). Unlike {!on_item}
    the callback sees the {!Batch.stamps} latency column, so egress
    layers can close the ingest→deliver measurement per tuple. *)

val start : t -> unit
(** Freeze the LFTA set. Idempotent; implied by the first scheduler run. *)

val started : t -> bool

val restart : t -> unit
(** Model "the RTS can be changed in seconds": unfreeze the LFTA set. *)

val flush : t -> string -> (unit, string) result
(** Make the named query emit its open state (partial aggregates) now —
    the escape hatch for aggregations without an ordered group key. *)

val total_drops : t -> int
(** Tuples dropped across all registered nodes' input channels. *)

val stats_report : t -> string
(** A human-readable table: every node's kind, tuples in/out, input drops,
    and buffered operator state. *)

val trace_report : t -> string
(** EXPLAIN-ANALYZE-style per-operator breakdown from the metrics
    registry: tuples in/out, drops, timed scheduler steps, cumulative
    service time and per-tuple cost. Most accurate after a
    {!Scheduler.run} with [~trace:true] (otherwise service times are
    sampled and the totals are scaled estimates). *)

val log_src : Logs.src
(** The [logs] source ([gigascope.rts]) under which manager lifecycle
    events (register, subscribe, start/restart, flush) are emitted. *)
