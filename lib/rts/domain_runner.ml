module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

(* ---------------- wakeup signals ---------------------------------------- *)

type signal = {
  mu : Mutex.t;
  cond : Condition.t;
  mutable hint : bool;
  mutable parked : bool;  (* inside Condition.wait *)
  mutable exited : bool;  (* the owning domain's loop has returned *)
  mutable seq : int;  (* notify count — the wedge probe's activity witness *)
}

let make_signal () =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    hint = false;
    parked = false;
    exited = false;
    seq = 0;
  }

let notify s =
  Mutex.lock s.mu;
  s.hint <- true;
  s.seq <- s.seq + 1;
  Condition.signal s.cond;
  Mutex.unlock s.mu

(* The hint closes the classic race: a producer that pushed between our
   last empty-check and this wait leaves the hint set, so we return
   immediately instead of sleeping through the wakeup. [poke] (a worker's
   "I am parking" announcement to domain 0) runs after [parked] is set and
   before the wait, all under the signal lock: by the time the poke is
   observable, the wedge probe already sees this signal as quiescent. The
   reverse order would let the probe find the worker "awake", park domain
   0, and then miss the worker's silent park — the all-parked deadlock.
   Lock order: a worker's signal lock may be held while taking domain 0's
   (inside [poke]); domain 0's is never held while taking another. *)
let wait ?(poke = ignore) s =
  Mutex.lock s.mu;
  if not s.hint then begin
    s.parked <- true;
    poke ();
    Condition.wait s.cond s.mu;
    s.parked <- false
  end;
  s.hint <- false;
  Mutex.unlock s.mu

let mark_exited s =
  Mutex.lock s.mu;
  s.exited <- true;
  Mutex.unlock s.mu

let signal_exited s =
  Mutex.lock s.mu;
  let r = s.exited in
  Mutex.unlock s.mu;
  r

(* Quiet in a way the domain cannot leave on its own: parked with no
   wakeup pending, or gone. *)
let quiescent s =
  Mutex.lock s.mu;
  let r = s.exited || (s.parked && not s.hint) in
  Mutex.unlock s.mu;
  r

(* ---------------- shared run state -------------------------------------- *)

type shared = {
  stop : bool Atomic.t;
  error : string option Atomic.t;
  signals : signal array;  (* one per partition; index 0 = packet-path domain *)
  mutable xchannels : Xchannel.t list;
  hb_mu : Mutex.t;
  mutable hb_pending : Node.t list;  (* source nodes awaiting a heartbeat *)
}

let make_shared ~partitions =
  {
    stop = Atomic.make false;
    error = Atomic.make None;
    signals = Array.init partitions (fun _ -> make_signal ());
    xchannels = [];
    hb_mu = Mutex.create ();
    hb_pending = [];
  }

let add_xchannel shared xc = shared.xchannels <- xc :: shared.xchannels
let signals shared = shared.signals

let wake_all shared = Array.iter notify shared.signals

(* Stop everything: set the flag, unblock producers stuck on full
   channels, and wake every parked domain. Closing the channels is what
   lets an error propagate out of a crashed domain — its peers would
   otherwise block forever pushing into (or waiting on) its edges. *)
let abort shared =
  Atomic.set shared.stop true;
  List.iter Xchannel.close shared.xchannels;
  wake_all shared

let fail shared msg =
  ignore (Atomic.compare_and_set shared.error None (Some msg));
  abort shared

let error shared = Atomic.get shared.error
let stopped shared = Atomic.get shared.stop

let all_workers_exited shared =
  let ok = ref true in
  Array.iteri (fun i s -> if i > 0 && not (signal_exited s) then ok := false) shared.signals;
  !ok

let seq_sum shared =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.mu;
      let v = s.seq in
      Mutex.unlock s.mu;
      acc + v)
    0 shared.signals

(* Termination detection for domain 0: true only when the run is provably
   frozen — every worker parked (having announced the park via its poke)
   or exited, no queued heartbeat request, no wakeup pending for domain 0
   itself, and no notify anywhere during the probe (stable [seq] sum).
   Soundness: a false positive needs some domain awake at declare time;
   it was observed quiescent mid-probe, so a notify must have woken it,
   and any notify either leaves its hint set (the quiescent check fails)
   or bumps a seq (the stability check fails). Liveness: the last domain
   to go quiet always pokes domain 0 (the [wait ~poke] protocol), which
   re-runs this probe. *)
let probe_wedged shared =
  let a1 = seq_sum shared in
  let workers_quiet =
    let ok = ref true in
    Array.iteri (fun i s -> if i > 0 && not (quiescent s) then ok := false) shared.signals;
    !ok
  in
  let hb_empty =
    Mutex.lock shared.hb_mu;
    let e = shared.hb_pending = [] in
    Mutex.unlock shared.hb_mu;
    e
  in
  let own_idle =
    let s = shared.signals.(0) in
    Mutex.lock s.mu;
    let r = not s.hint in
    Mutex.unlock s.mu;
    r
  in
  workers_quiet && hb_empty && own_idle && seq_sum shared = a1

(* ---------------- cross-domain heartbeat requests ------------------------ *)

(* A blocked HFTA on a worker domain cannot fire source clocks itself:
   sources live on domain 0 and their state (feed cursor, last_ts) is not
   synchronized. The worker walks its upstream cone (wiring is frozen at
   spawn, so the walk is a pure read), queues the source nodes here, and
   pokes domain 0, which fires the heartbeats between rounds. *)
let rec collect_sources visited acc node =
  if List.memq node !visited then acc
  else begin
    visited := node :: !visited;
    if Node.kind node = Node.Source then node :: acc
    else Array.fold_left (fun acc (up, _) -> collect_sources visited acc up) acc (Node.inputs node)
  end

let request_heartbeat shared node =
  let sources = collect_sources (ref []) [] node in
  if sources <> [] then begin
    Mutex.lock shared.hb_mu;
    shared.hb_pending <- sources @ shared.hb_pending;
    Mutex.unlock shared.hb_mu;
    notify shared.signals.(0)
  end

let take_heartbeats shared =
  Mutex.lock shared.hb_mu;
  let pending = shared.hb_pending in
  shared.hb_pending <- [];
  Mutex.unlock shared.hb_mu;
  (* dedupe: a merge blocked on two silent inputs queues a source twice *)
  List.fold_left (fun acc n -> if List.memq n acc then acc else n :: acc) [] pending

(* ---------------- worker domain loop ------------------------------------ *)

type t = {
  id : int;  (* partition index, >= 1 *)
  nodes : Node.t list;  (* this domain's HFTAs, in topological order *)
  quantum : int;
  heartbeats : bool;
  sample : int;  (* service-time sampling period *)
}

let make ~id ~nodes ~quantum ~heartbeats ~sample = { id; nodes; quantum; heartbeats; sample }

let inputs_empty node =
  Array.for_all (fun (_, chan) -> Channel.is_empty chan) (Node.inputs node)

let run_loop shared r =
  let my_signal = shared.signals.(r.id) in
  let poke0 () = notify shared.signals.(0) in
  (* A poisoned node announces Error+Eof (and so reads as exhausted)
     while its upstream may still be producing. If the worker exited the
     moment its drain caught up, that producer would block forever
     pushing into a full cross-channel nobody pops — and a producer
     blocked mid-push is not parked, so the wedge probe cannot see it.
     Keep the domain alive (draining, or parked until the next push
     pokes it) until every upstream of a poisoned node is exhausted
     too. Non-poisoned nodes only emit Eof after consuming their
     inputs' Eofs, so for them the extra condition already holds. *)
  let upstreams_exhausted n =
    Array.for_all (fun ((up : Node.t), _) -> Node.exhausted up) (Node.inputs n)
  in
  let finished () =
    List.for_all
      (fun n ->
        Node.exhausted n && inputs_empty n
        && ((not (Node.is_poisoned n)) || upstreams_exhausted n))
      r.nodes
  in
  let iter = ref 0 in
  let continue = ref true in
  while !continue && not (Atomic.get shared.stop) do
    incr iter;
    let timed = (!iter - 1) mod r.sample = 0 in
    let progress = ref false in
    List.iter
      (fun node ->
        let made =
          if timed then begin
            let t0 = Clock.now_ns () in
            let m = Node.step_inputs node ~quantum:r.quantum in
            Node.record_service node (Clock.now_ns () -. t0);
            m
          end
          else Node.step_inputs node ~quantum:r.quantum
        in
        if made then progress := true)
      r.nodes;
    (* Same policy as the single-threaded scheduler: consult blocked
       inputs every iteration, not just when parked — an operator can
       keep absorbing one input while starving on another (a merge over
       skewed streams), and only the heartbeat bounds its buffer. *)
    if r.heartbeats then
      List.iter
        (fun node ->
          match Node.blocked_input node with
          | Some i ->
              let up, _ = (Node.inputs node).(i) in
              request_heartbeat shared up
          | None -> ())
        r.nodes;
    if not !progress then begin
      if finished () then continue := false
      else
        (* Park until an input channel is pushed, a requested heartbeat's
           punctuation arrives, or the run aborts. Waiting only when every
           input is empty keeps the network deadlock-free: the producer of
           a full channel never waits on its own consumer. The poke tells
           domain 0 to re-run its wedge probe — a run where every domain
           parks like this must end in an error, not a hang. *)
        wait ~poke:poke0 my_signal
    end
  done;
  (* Domain 0's completion and wedge checks both wait on worker exits;
     announce ours even on abort. *)
  mark_exited my_signal;
  poke0 ()

let spawn shared r =
  Domain.spawn (fun () ->
      try run_loop shared r
      with e ->
        let names = String.concat "," (List.map Node.name r.nodes) in
        mark_exited shared.signals.(r.id);
        fail shared
          (Printf.sprintf "domain %d (%s): %s" r.id names (Printexc.to_string e)))
