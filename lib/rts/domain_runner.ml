module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

(* ---------------- wakeup signals ---------------------------------------- *)

type signal = { mu : Mutex.t; cond : Condition.t; mutable hint : bool }

let make_signal () = { mu = Mutex.create (); cond = Condition.create (); hint = false }

let notify s =
  Mutex.lock s.mu;
  s.hint <- true;
  Condition.signal s.cond;
  Mutex.unlock s.mu

(* The hint closes the classic race: a producer that pushed between our
   last empty-check and this wait leaves the hint set, so we return
   immediately instead of sleeping through the wakeup. *)
let wait s =
  Mutex.lock s.mu;
  if not s.hint then Condition.wait s.cond s.mu;
  s.hint <- false;
  Mutex.unlock s.mu

(* ---------------- shared run state -------------------------------------- *)

type shared = {
  stop : bool Atomic.t;
  error : string option Atomic.t;
  signals : signal array;  (* one per partition; index 0 = packet-path domain *)
  mutable xchannels : Xchannel.t list;
  hb_mu : Mutex.t;
  mutable hb_pending : Node.t list;  (* source nodes awaiting a heartbeat *)
}

let make_shared ~partitions =
  {
    stop = Atomic.make false;
    error = Atomic.make None;
    signals = Array.init partitions (fun _ -> make_signal ());
    xchannels = [];
    hb_mu = Mutex.create ();
    hb_pending = [];
  }

let add_xchannel shared xc = shared.xchannels <- xc :: shared.xchannels
let signals shared = shared.signals

let wake_all shared = Array.iter notify shared.signals

(* Stop everything: set the flag, unblock producers stuck on full
   channels, and wake every parked domain. Closing the channels is what
   lets an error propagate out of a crashed domain — its peers would
   otherwise block forever pushing into (or waiting on) its edges. *)
let abort shared =
  Atomic.set shared.stop true;
  List.iter Xchannel.close shared.xchannels;
  wake_all shared

let fail shared msg =
  ignore (Atomic.compare_and_set shared.error None (Some msg));
  abort shared

let error shared = Atomic.get shared.error
let stopped shared = Atomic.get shared.stop

(* ---------------- cross-domain heartbeat requests ------------------------ *)

(* A blocked HFTA on a worker domain cannot fire source clocks itself:
   sources live on domain 0 and their state (feed cursor, last_ts) is not
   synchronized. The worker walks its upstream cone (wiring is frozen at
   spawn, so the walk is a pure read), queues the source nodes here, and
   pokes domain 0, which fires the heartbeats between rounds. *)
let rec collect_sources visited acc node =
  if List.memq node !visited then acc
  else begin
    visited := node :: !visited;
    if Node.kind node = Node.Source then node :: acc
    else Array.fold_left (fun acc (up, _) -> collect_sources visited acc up) acc (Node.inputs node)
  end

let request_heartbeat shared node =
  let sources = collect_sources (ref []) [] node in
  if sources <> [] then begin
    Mutex.lock shared.hb_mu;
    shared.hb_pending <- sources @ shared.hb_pending;
    Mutex.unlock shared.hb_mu;
    notify shared.signals.(0)
  end

let take_heartbeats shared =
  Mutex.lock shared.hb_mu;
  let pending = shared.hb_pending in
  shared.hb_pending <- [];
  Mutex.unlock shared.hb_mu;
  (* dedupe: a merge blocked on two silent inputs queues a source twice *)
  List.fold_left (fun acc n -> if List.memq n acc then acc else n :: acc) [] pending

(* ---------------- worker domain loop ------------------------------------ *)

type t = {
  id : int;  (* partition index, >= 1 *)
  nodes : Node.t list;  (* this domain's HFTAs, in topological order *)
  quantum : int;
  heartbeats : bool;
  sample : int;  (* service-time sampling period *)
}

let make ~id ~nodes ~quantum ~heartbeats ~sample = { id; nodes; quantum; heartbeats; sample }

let inputs_empty node =
  Array.for_all (fun (_, chan) -> Channel.is_empty chan) (Node.inputs node)

let run_loop shared r =
  let my_signal = shared.signals.(r.id) in
  let finished () = List.for_all (fun n -> Node.exhausted n && inputs_empty n) r.nodes in
  let iter = ref 0 in
  let continue = ref true in
  while !continue && not (Atomic.get shared.stop) do
    incr iter;
    let timed = (!iter - 1) mod r.sample = 0 in
    let progress = ref false in
    List.iter
      (fun node ->
        let made =
          if timed then begin
            let t0 = Clock.now_ns () in
            let m = Node.step_inputs node ~quantum:r.quantum in
            Node.record_service node (Clock.now_ns () -. t0);
            m
          end
          else Node.step_inputs node ~quantum:r.quantum
        in
        if made then progress := true)
      r.nodes;
    (* Same policy as the single-threaded scheduler: consult blocked
       inputs every iteration, not just when parked — an operator can
       keep absorbing one input while starving on another (a merge over
       skewed streams), and only the heartbeat bounds its buffer. *)
    if r.heartbeats then
      List.iter
        (fun node ->
          match Node.blocked_input node with
          | Some i ->
              let up, _ = (Node.inputs node).(i) in
              request_heartbeat shared up
          | None -> ())
        r.nodes;
    if not !progress then begin
      if finished () then continue := false
      else
        (* Park until an input channel is pushed, a requested heartbeat's
           punctuation arrives, or the run aborts. Waiting only when every
           input is empty keeps the network deadlock-free: the producer of
           a full channel never waits on its own consumer. *)
        wait my_signal
    end
  done

let spawn shared r =
  Domain.spawn (fun () ->
      try run_loop shared r
      with e ->
        let names = String.concat "," (List.map Node.name r.nodes) in
        fail shared
          (Printf.sprintf "domain %d (%s): %s" r.id names (Printexc.to_string e)))
