module Metrics = Gigascope_obs.Metrics

type counters = {
  frames_in : Metrics.Counter.t;
  frames_out : Metrics.Counter.t;
  bytes_in : Metrics.Counter.t;
  bytes_out : Metrics.Counter.t;
}

let counters_in reg ~prefix =
  {
    frames_in = Metrics.counter reg (prefix ^ ".frames_in");
    frames_out = Metrics.counter reg (prefix ^ ".frames_out");
    bytes_in = Metrics.counter reg (prefix ^ ".bytes_in");
    bytes_out = Metrics.counter reg (prefix ^ ".bytes_out");
  }

type t = {
  fd : Unix.file_descr;
  peer_name : string;
  counters : counters option;
  send_mu : Mutex.t;
  (* receive-side reassembly buffer; only the receiving thread touches it *)
  mutable buf : bytes;
  mutable filled : int;
  mutable pos : int;
  mutable closed : bool;
}

(* A peer that vanishes mid-write must surface as EPIPE (an [Error] on
   that connection), not as a process-killing signal. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ())

let of_fd ?counters ?(peer = "?") fd =
  Lazy.force ignore_sigpipe;
  {
    fd;
    peer_name = peer;
    counters;
    send_mu = Mutex.create ();
    buf = Bytes.create 65536;
    filled = 0;
    pos = 0;
    closed = false;
  }

let peer t = t.peer_name

let is_closed t = t.closed

(* SO_RCVTIMEO/SO_SNDTIMEO: the kernel fails the blocking call with
   EAGAIN after [s] seconds instead of waiting forever — the mechanism
   behind subscriber idle-timeouts and the fix for clients hanging in
   [recv] when the server dies without closing the socket. 0 disables. *)
let set_read_deadline t s =
  try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO (Float.max 0.0 s)
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let set_write_deadline t s =
  try Unix.setsockopt_float t.fd Unix.SO_SNDTIMEO (Float.max 0.0 s)
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let close t =
  Mutex.lock t.send_mu;
  let was_closed = t.closed in
  t.closed <- true;
  Mutex.unlock t.send_mu;
  if not was_closed then begin
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let count f = function Some c -> f c | None -> ()

let send t msg =
  match Wire.encode msg with
  | exception Invalid_argument e -> Error e
  | frame -> (
      Mutex.lock t.send_mu;
      let result =
        if t.closed then Error "connection closed"
        else
          let fault = Gigascope_rts.Faults.send_point ~peer:t.peer_name ~len:(Bytes.length frame) in
          match fault with
          | Gigascope_rts.Faults.Disconnect ->
              t.closed <- true;
              (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
              (try Unix.close t.fd with Unix.Unix_error _ -> ());
              Error "send: injected disconnect"
          | Gigascope_rts.Faults.Torn k ->
              (* write a truncated frame, then fail the connection: the
                 peer's decoder sees a half-written tail *)
              let k = min k (Bytes.length frame) in
              (try
                 let off = ref 0 in
                 while !off < k do
                   off := !off + Unix.write t.fd frame !off (k - !off)
                 done
               with Unix.Unix_error _ -> ());
              t.closed <- true;
              (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
              (try Unix.close t.fd with Unix.Unix_error _ -> ());
              Error "send: injected torn write"
          | Gigascope_rts.Faults.Drop ->
              (* frame silently vanishes; connection stays up *)
              Ok ()
          | Gigascope_rts.Faults.Pass | Gigascope_rts.Faults.Delay _ -> (
              (match fault with
              | Gigascope_rts.Faults.Delay s -> Thread.delay s
              | _ -> ());
              match
                let n = Bytes.length frame in
                let off = ref 0 in
                while !off < n do
                  off := !off + Unix.write t.fd frame !off (n - !off)
                done;
                n
              with
              | n ->
                  count
                    (fun c ->
                      Metrics.Counter.incr c.frames_out;
                      Metrics.Counter.add c.bytes_out n)
                    t.counters;
                  Ok ()
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  Error "send: timeout (write deadline exceeded)"
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Printf.sprintf "send: %s" (Unix.error_message e)))
      in
      Mutex.unlock t.send_mu;
      result)

(* Make room to read at least [n] more bytes: shift the consumed prefix
   away, then grow the buffer (bounded by the max frame size, which
   Wire.decode already enforces via its payload-length check). *)
let ensure_room t n =
  if t.pos > 0 then begin
    Bytes.blit t.buf t.pos t.buf 0 (t.filled - t.pos);
    t.filled <- t.filled - t.pos;
    t.pos <- 0
  end;
  let cap = Bytes.length t.buf in
  if cap - t.filled < n then begin
    let target = max (t.filled + n) (cap * 2) in
    let target = min target (Wire.header_len + Wire.max_payload + 65536) in
    if target > cap then begin
      let grown = Bytes.create target in
      Bytes.blit t.buf 0 grown 0 t.filled;
      t.buf <- grown
    end
  end

let rec recv t =
  if t.closed then Error "connection closed"
  else
    match Wire.decode t.buf ~pos:t.pos ~len:t.filled with
    | Wire.Frame (msg, next) ->
        t.pos <- next;
        if t.pos = t.filled then begin
          t.pos <- 0;
          t.filled <- 0
        end;
        count (fun c -> Metrics.Counter.incr c.frames_in) t.counters;
        Ok msg
    | Wire.Corrupt e -> Error (Printf.sprintf "corrupt frame from %s: %s" t.peer_name e)
    | Wire.Need_more -> (
        ensure_room t 65536;
        let room = Bytes.length t.buf - t.filled in
        match Unix.read t.fd t.buf t.filled room with
        | 0 -> Error "connection closed"
        | n ->
            t.filled <- t.filled + n;
            count (fun c -> Metrics.Counter.add c.bytes_in n) t.counters;
            recv t
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            Error "recv: timeout (read deadline exceeded)"
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "recv: %s" (Unix.error_message e)))
