type t = Unix_sock of string | Tcp of string * int

let of_string s =
  let s = String.trim s in
  if s = "" then Error "address: empty"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then begin
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "address: unix: needs a socket path" else Ok (Unix_sock path)
  end
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "address %S: expected unix:PATH or HOST:PORT" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 0xffff ->
            Ok (Tcp ((if host = "" then "0.0.0.0" else host), p))
        | Some p -> Error (Printf.sprintf "address %S: port %d out of range" s p)
        | None -> Error (Printf.sprintf "address %S: bad port %S" s port))

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let to_sockaddr = function
  | Unix_sock path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Ok (Unix.ADDR_INET (ip, port))
      | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              Error (Printf.sprintf "address: no A record for %s" host)
          | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port))
          | exception Not_found -> Error (Printf.sprintf "address: cannot resolve %s" host)))

let of_sockaddr = function
  | Unix.ADDR_UNIX path -> Unix_sock path
  | Unix.ADDR_INET (ip, port) -> Tcp (Unix.string_of_inet_addr ip, port)
