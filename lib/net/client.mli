(** Client side of the network data plane: the application that
    "contacts the registry, obtains the FTA's output, and subscribes"
    (paper §3) — over a socket instead of shared memory.

    A connection is single-purpose after setup: [subscribe] turns it
    into a stream of items ({!next}/{!iter}), [publish] turns it into a
    tuple sink ({!send_batch}). [list] may be called any number of times
    before that.

    {!source} and {!add_remote_interface} close the loop for
    distribution: a subscribed connection exposed as an engine source
    lets one gsq process feed another — the first step toward running
    LFTAs and HFTAs on different hosts (the paper's two-level split,
    stretched across a network). *)

module Rts = Gigascope_rts

type t

type reconnect = {
  attempts : int;  (** redials before giving up *)
  base_delay : float;  (** seconds; doubles per attempt *)
  max_delay : float;  (** backoff ceiling, seconds *)
  jitter : float;  (** fraction of the backoff added at random *)
  seed : int;  (** jitter generator seed — same seed, same retry instants *)
}

val default_reconnect : reconnect
(** 5 attempts, 50 ms base, 2 s ceiling, 0.5 jitter, seed 0. *)

val connect :
  ?peer_name:string ->
  ?reconnect:reconnect ->
  ?idle_timeout:float ->
  ?metrics:Gigascope_obs.Metrics.t ->
  Addr.t ->
  (t, string) result
(** Dial, exchange [Hello] frames.

    With [reconnect], a connection lost {e while subscribed} is
    self-healed: redial with exponential backoff plus seeded jitter,
    then [Resume] with the delivered-tuple count as the token — the
    server replays what it still holds and announces the rest as one
    [Item.Gap]. Counted under [net.reconnects] when [metrics] is given.

    With [idle_timeout] (seconds), a {!next} that sees no frame for
    that long fails with a timeout [Error] instead of blocking forever
    — the fix for clients hanging when the server host dies silently.
    Size it to a multiple of the server's heartbeat interval: a live
    but quiet server keeps the deadline fed with [Heartbeat] frames. *)

val delivered : t -> int
(** Tuples handed to the application so far — the resume token. *)

val server_name : t -> string
(** The server's self-reported identity from its [Hello]. *)

val list : t -> (Wire.query_info list, string) result

val subscribe : t -> string -> (Rts.Schema.t, string) result
(** Attach to the named query; returns its output schema and remembers
    the server's subscription id for later [Resume]. *)

val next : t -> (Rts.Item.t option, string) result
(** Next item of a subscribed stream, unbatching wire frames; [Ok None]
    after EOF (or a server [Bye]). [Heartbeat] frames are absorbed
    (counted under [net.heartbeats.recv]). [Error] on protocol
    violations or a lost connection — after the reconnect-and-resume
    loop, if one is configured, has given up. Items may include
    [Item.Gap n] markers for tuples lost to slow-consumer drops or
    across a resume, and [Item.Error] when the producer crashed. *)

val iter : t -> (Rts.Item.t -> unit) -> (unit, string) result
(** Drive {!next} to EOF. *)

val publish : t -> iface:string -> (Rts.Schema.t, string) result
(** Claim the named ingest interface; returns its schema. *)

val send_batch : t -> Rts.Batch.t -> (unit, string) result

val send_tuple : t -> Rts.Value.t array -> (unit, string) result

val finish : t -> (unit, string) result
(** End a published stream cleanly (an EOF-sealed empty batch). *)

val close : t -> unit

val source : t -> Rts.Node.source
(** View a subscribed connection as an engine source: [pull] yields
    tuples and punctuation and returns [None] at EOF; on a lost
    connection (after any configured reconnects) it yields one
    [Item.Error] and then [None] — the loss is explicit downstream and
    the engine never hangs; [clock] republishes the last punctuation
    bounds received, so heartbeats keep working across the wire. *)

val add_remote_interface :
  ?reconnect:reconnect ->
  ?idle_timeout:float ->
  Gigascope.Engine.t ->
  name:string ->
  Addr.t ->
  query:string ->
  (unit, string) result
(** Convenience: connect to [addr], subscribe to [query], and register
    the stream as source [name] (with the remote schema) on the local
    engine — one call to make a remote query's output locally
    queryable. *)
