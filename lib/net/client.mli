(** Client side of the network data plane: the application that
    "contacts the registry, obtains the FTA's output, and subscribes"
    (paper §3) — over a socket instead of shared memory.

    A connection is single-purpose after setup: [subscribe] turns it
    into a stream of items ({!next}/{!iter}), [publish] turns it into a
    tuple sink ({!send_batch}). [list] may be called any number of times
    before that.

    {!source} and {!add_remote_interface} close the loop for
    distribution: a subscribed connection exposed as an engine source
    lets one gsq process feed another — the first step toward running
    LFTAs and HFTAs on different hosts (the paper's two-level split,
    stretched across a network). *)

module Rts = Gigascope_rts

type t

val connect : ?peer_name:string -> Addr.t -> (t, string) result
(** Dial, exchange [Hello] frames. *)

val server_name : t -> string
(** The server's self-reported identity from its [Hello]. *)

val list : t -> (Wire.query_info list, string) result

val subscribe : t -> string -> (Rts.Schema.t, string) result
(** Attach to the named query; returns its output schema. *)

val next : t -> (Rts.Item.t option, string) result
(** Next item of a subscribed stream, unbatching wire frames; [Ok None]
    after EOF (or a server [Bye]). [Error] on protocol violations or a
    lost connection. *)

val iter : t -> (Rts.Item.t -> unit) -> (unit, string) result
(** Drive {!next} to EOF. *)

val publish : t -> iface:string -> (Rts.Schema.t, string) result
(** Claim the named ingest interface; returns its schema. *)

val send_batch : t -> Rts.Batch.t -> (unit, string) result

val send_tuple : t -> Rts.Value.t array -> (unit, string) result

val finish : t -> (unit, string) result
(** End a published stream cleanly (an EOF-sealed empty batch). *)

val close : t -> unit

val source : t -> Rts.Node.source
(** View a subscribed connection as an engine source: [pull] yields
    tuples and punctuation and returns [None] at EOF (or on a lost
    connection — a vanished upstream ends the stream, it does not hang
    the engine); [clock] republishes the last punctuation bounds
    received, so heartbeats keep working across the wire. *)

val add_remote_interface :
  Gigascope.Engine.t -> name:string -> Addr.t -> query:string -> (unit, string) result
(** Convenience: connect to [addr], subscribe to [query], and register
    the stream as source [name] (with the remote schema) on the local
    engine — one call to make a remote query's output locally
    queryable. *)
