(** The stream-manager server: the paper's registry as a network service.

    "An application that wants to access Gigascope data contacts the
    registry, obtains the FTA's output, and subscribes" (§3). This
    module is that registry made long-lived and remote: it listens on
    Unix-domain and/or TCP sockets, maps query names to the live
    {!Gigascope_rts.Manager} nodes of one engine, and streams each
    subscribed query's output — as {!Wire} batch frames — to any number
    of remote subscribers.

    {b Threading.} Each listener runs an accept loop on its own thread;
    each connection gets a handler thread. Subscriber egress is
    decoupled from the packet path by a bounded per-subscriber queue:
    the engine-side fanout callback only enqueues (applying the
    slow-consumer policy), and the connection's own thread drains the
    queue to the socket. A stuck TCP peer therefore never stalls the
    scheduler — unless the [Block] policy is chosen deliberately.

    {b Robustness.} A malformed frame, oversized frame, or half-written
    tail kills that connection only; the accept loop survives transient
    errors; every socket error is an [Error]/log, never an exception
    escaping a thread. *)

module Rts = Gigascope_rts

(** What to do when a subscriber's egress queue is full:
    - [Block]: backpressure the engine (the scheduler thread waits; use
      when losing tuples is worse than stalling the packet path);
    - [Drop_newest]: drop the incoming tuple, count it under
      [net.subscriber.drops] — the default, matching the paper's
      drop-not-block channels;
    - [Disconnect]: kill the slow subscriber, count it under
      [net.subscriber.disconnects].
    Control items (punctuation, EOF) are always enqueued — a bounded
    overshoot that keeps stream position and shutdown intact. *)
type policy = Block | Drop_newest | Disconnect

val policy_of_string : string -> (policy, string) result
(** ["block"], ["drop"]/["drop_newest"], ["disconnect"]. *)

val policy_to_string : policy -> string

type t

val create :
  ?policy:policy ->
  ?egress_capacity:int ->
  ?peer_name:string ->
  ?heartbeat:float ->
  Gigascope.Engine.t ->
  t
(** [egress_capacity] (default 4096) bounds each subscriber's egress
    queue in items; a query whose certified burst
    ({!Gigascope.Engine.certified_burst}) exceeds it gets a grown queue
    — auto-sizing only ever grows, never shrinks. [heartbeat] (seconds; off by default) sends
    {!Wire.msg} [Heartbeat] liveness frames to every subscriber at that
    interval, counted under [net.heartbeats.sent] — pair with a client
    idle timeout to detect dead peers. Registers the [net.*] metrics in
    the engine's registry. The server serves whatever queries are
    installed by the time {!listen} is called. *)

val add_ingest :
  t -> name:string -> schema:Rts.Schema.t -> ?capacity:int -> unit -> (unit, string) result
(** Register a network-fed source: remote publishers ({!Wire.msg}
    [Publish name]) push tuple batches into a bounded queue that the
    engine reads as the stream [name] — the server half of feeding one
    gsq process from another. Must be called before queries reading
    [name] are installed. The engine-side pull {e blocks} when the queue
    is empty (the run is paced by the publisher); a publisher's EOF or
    disconnect ends the stream. One publisher at a time per ingest. *)

val listen : t -> Addr.t -> (Addr.t, string) result
(** Start accepting on [addr]; returns the actually-bound address (port
    0 resolves to the kernel-chosen port). May be called several times
    — e.g. one Unix-domain and one TCP listener. Attaches the fanout
    callbacks for every query node registered so far. *)

val addresses : t -> Addr.t list

val subscriber_count : t -> int
(** Live subscribers (for [--wait-subscribers] style orchestration). *)

val sever_subscribers : ?query:string -> t -> int
(** Fault injection: abruptly close the socket under every live
    subscriber (of [query] only, when given), exactly as a pulled cable
    would. The subscriptions are orphaned, not removed — a client with
    reconnect configured resumes and is told the precise loss as a
    leading {!Gigascope_rts.Item.t} [Gap]. Returns the number of
    connections severed. *)

val drain : ?timeout:float -> t -> bool
(** Wait (up to [timeout] seconds, default 10) until every {e attached}
    subscriber has received its EOF and disconnected; [false] on
    timeout. Orphaned subscriptions (socket died, held for {!Wire.msg}
    [Resume]) are not waited on. Call after the engine run completes. *)

val stop : t -> unit
(** Close listeners, ingests and every connection; wake every blocked
    thread; join them all. Idempotent. *)

val log_src : Logs.src
