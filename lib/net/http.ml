let log_src = Logs.Src.create "gigascope.http" ~doc:"Gigascope HTTP observability endpoint"

module Log = (val Logs.src_log log_src : Logs.LOG)

type handler = path:string -> (string * string) option

type t = {
  handler : handler;
  mu : Mutex.t;
  mutable listeners : (Unix.file_descr * Addr.t) list;
  mutable threads : Thread.t list;
  mutable running : bool;
}

let create ~handler = { handler; mu = Mutex.create (); listeners = []; threads = []; running = true }

(* Cap on the request head (request line + headers): an observability
   port must not be talked into buffering unbounded data. *)
let max_head = 8192

(* Read until the blank line ending the header block (or EOF/cap). *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf >= max_head then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          let s = Buffer.contents buf in
          let module S = String in
          let rec find i =
            if i + 3 < S.length s then
              if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then true
              else find (i + 1)
            else false
          in
          if find 0 then Some s else go ()
      | exception Unix.Unix_error _ -> None
  in
  go ()

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let respond fd ~status ~content_type body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       status content_type (String.length body) body)

(* One request per connection (HTTP/1.0 semantics, Connection: close):
   the consumers are curl, Prometheus scrapers and [gsq top], all of
   which reconnect per poll. *)
let handle t fd =
  (match read_head fd with
  | None -> ()
  | Some head -> (
      let line = match String.index_opt head '\r' with
        | Some i -> String.sub head 0 i
        | None -> head
      in
      match String.split_on_char ' ' line with
      | [ meth; target; _http ] -> (
          let path =
            match String.index_opt target '?' with
            | Some i -> String.sub target 0 i
            | None -> target
          in
          if meth <> "GET" then
            respond fd ~status:"405 Method Not Allowed" ~content_type:"text/plain" "GET only\n"
          else
            match t.handler ~path with
            | Some (content_type, body) -> respond fd ~status:"200 OK" ~content_type body
            | None -> respond fd ~status:"404 Not Found" ~content_type:"text/plain" "not found\n")
      | _ -> respond fd ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t lfd addr =
  let rec loop () =
    match Unix.accept lfd with
    | fd, _ when not t.running -> (try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, _ ->
        let th =
          Thread.create
            (fun () ->
              try handle t fd
              with exn -> Log.warn (fun m -> m "http handler died: %s" (Printexc.to_string exn)))
            ()
        in
        Mutex.lock t.mu;
        t.threads <- th :: t.threads;
        Mutex.unlock t.mu;
        loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        if t.running then begin
          Log.warn (fun m -> m "http accept on %s: %s" (Addr.to_string addr) (Unix.error_message e));
          Thread.delay 0.01;
          loop ()
        end
  in
  loop ()

let listen t addr =
  match Addr.to_sockaddr addr with
  | Error _ as e -> e
  | Ok sockaddr -> (
      let domain = Unix.domain_of_sockaddr sockaddr in
      match
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (try
           if domain <> Unix.PF_UNIX then Unix.setsockopt fd Unix.SO_REUSEADDR true;
           (match sockaddr with
           | Unix.ADDR_UNIX path when Sys.file_exists path -> (
               try Unix.unlink path with Unix.Unix_error _ -> ())
           | _ -> ());
           Unix.bind fd sockaddr;
           Unix.listen fd 16
         with exn ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise exn);
        fd
      with
      | fd ->
          let bound = Addr.of_sockaddr (Unix.getsockname fd) in
          let bound =
            match (bound, addr) with
            | Addr.Tcp (_, port), Addr.Tcp (host, _) -> Addr.Tcp (host, port)
            | b, _ -> b
          in
          Mutex.lock t.mu;
          t.listeners <- (fd, bound) :: t.listeners;
          Mutex.unlock t.mu;
          let th = Thread.create (fun () -> accept_loop t fd bound) () in
          Mutex.lock t.mu;
          t.threads <- th :: t.threads;
          Mutex.unlock t.mu;
          Log.info (fun m -> m "http listening on %s" (Addr.to_string bound));
          Ok bound
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot listen on %s: %s" (Addr.to_string addr)
               (Unix.error_message e)))

let stop t =
  Mutex.lock t.mu;
  let was_running = t.running in
  t.running <- false;
  let listeners = t.listeners in
  t.listeners <- [];
  Mutex.unlock t.mu;
  if was_running then begin
    List.iter
      (fun (fd, addr) ->
        (* wake the accept loop with a throwaway connection, then close *)
        (match Addr.to_sockaddr addr with
        | Ok sa -> (
            match Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 with
            | exception Unix.Unix_error _ -> ()
            | s ->
                (try Unix.connect s sa with Unix.Unix_error _ -> ());
                (try Unix.close s with Unix.Unix_error _ -> ()))
        | Error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match addr with
        | Addr.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
        | Addr.Tcp _ -> ())
      listeners;
    let threads =
      Mutex.lock t.mu;
      let l = t.threads in
      t.threads <- [];
      Mutex.unlock t.mu;
      l
    in
    List.iter (fun th -> try Thread.join th with _ -> ()) threads
  end
