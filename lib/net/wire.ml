module Schema = Gigascope_rts.Schema
module Value = Gigascope_rts.Value
module Item = Gigascope_rts.Item
module Batch = Gigascope_rts.Batch
module Ty = Gigascope_rts.Ty
module Order_prop = Gigascope_rts.Order_prop
module Sketch = Gigascope_sketch.Sketch

let protocol_version = 2
let header_len = 9
let max_payload = 16 * 1024 * 1024

type query_info = { q_name : string; q_kind : string; q_schema : Schema.t }

type msg =
  | Hello of { version : int; peer : string }
  | List_queries
  | Queries of query_info list
  | Subscribe of string
  | Subscribed of { name : string; schema : Schema.t; sub_id : int }
  | Publish of string
  | Publish_ok of { iface : string; schema : Schema.t }
  | Batch of Batch.t
  | Err of string
  | Bye
  | Resume of { name : string; sub_id : int; token : int }
  | Heartbeat

let msg_label = function
  | Hello _ -> "hello"
  | List_queries -> "list_queries"
  | Queries _ -> "queries"
  | Subscribe _ -> "subscribe"
  | Subscribed _ -> "subscribed"
  | Publish _ -> "publish"
  | Publish_ok _ -> "publish_ok"
  | Batch _ -> "batch"
  | Err _ -> "err"
  | Bye -> "bye"
  | Resume _ -> "resume"
  | Heartbeat -> "heartbeat"

let tag_of_msg = function
  | Hello _ -> 1
  | List_queries -> 2
  | Queries _ -> 3
  | Subscribe _ -> 4
  | Subscribed _ -> 5
  | Publish _ -> 6
  | Publish_ok _ -> 7
  | Batch _ -> 8
  | Err _ -> 9
  | Bye -> 10
  | Resume _ -> 11
  | Heartbeat -> 12

(* ------------------------------ encoding ------------------------------- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf ((v lsr 16) land 0xffff);
  put_u16 buf (v land 0xffff)

let put_i64 buf v =
  let v64 = Int64.of_int v in
  for i = 7 downto 0 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical v64 (i * 8)) land 0xff)
  done

let put_f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical bits (i * 8)) land 0xff)
  done

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_value buf = function
  | Value.Null -> put_u8 buf 0
  | Value.Bool false -> put_u8 buf 1
  | Value.Bool true -> put_u8 buf 2
  | Value.Int v ->
      put_u8 buf 3;
      put_i64 buf v
  | Value.Float v ->
      put_u8 buf 4;
      put_f64 buf v
  | Value.Str s ->
      put_u8 buf 5;
      put_str buf s
  | Value.Ip v ->
      put_u8 buf 6;
      put_u32 buf v
  | Value.Sketch s ->
      (* opaque sketch state: the sketch library's own versioned codec,
         length-prefixed like a string *)
      put_u8 buf 7;
      put_str buf (Sketch.encode s)

let ty_tag = function
  | Ty.Bool -> 0
  | Ty.Int -> 1
  | Ty.Float -> 2
  | Ty.Str -> 3
  | Ty.Ip -> 4
  | Ty.Sketch -> 5

let dir_bit = function Order_prop.Asc -> 0 | Order_prop.Desc -> 1

let put_order buf (o : Order_prop.t) =
  match o with
  | Order_prop.Unordered -> put_u8 buf 0
  | Order_prop.Strict d -> put_u8 buf (1 + dir_bit d)
  | Order_prop.Monotone d -> put_u8 buf (3 + dir_bit d)
  | Order_prop.Nonrepeating -> put_u8 buf 5
  | Order_prop.Banded (d, band) ->
      put_u8 buf (6 + dir_bit d);
      put_f64 buf band
  | Order_prop.In_group (fields, d) ->
      put_u8 buf (8 + dir_bit d);
      put_u16 buf (List.length fields);
      List.iter (put_str buf) fields

let put_schema buf schema =
  let fields = Schema.fields schema in
  put_u16 buf (Array.length fields);
  Array.iter
    (fun (f : Schema.field) ->
      put_str buf f.Schema.name;
      put_u8 buf (ty_tag f.Schema.ty);
      put_order buf f.Schema.order)
    fields

let put_tuple buf values =
  put_u16 buf (Array.length values);
  Array.iter (put_value buf) values

let put_punct buf bounds =
  put_u16 buf (List.length bounds);
  List.iter
    (fun (idx, v) ->
      put_u16 buf idx;
      put_value buf v)
    bounds

let put_batch buf batch =
  let tuples = Batch.tuples batch in
  put_u32 buf (Array.length tuples);
  Array.iter (put_tuple buf) tuples;
  (match Batch.ctrl batch with
  | None -> put_u8 buf 0
  | Some (Item.Punct bounds) ->
      put_u8 buf 1;
      put_punct buf bounds
  | Some Item.Flush -> put_u8 buf 2
  | Some Item.Eof -> put_u8 buf 3
  | Some (Item.Error e) ->
      put_u8 buf 4;
      put_str buf e
  | Some (Item.Gap n) ->
      put_u8 buf 5;
      put_i64 buf n
  | Some (Item.Tuple _) -> assert false (* Batch.make rejects a tuple ctrl *));
  (* v2: the latency-stamp column. Unconditional flag byte (so the
     trailing-bytes corruption check stays exact), i64 per tuple when
     present — stamped batches are the sampled exception, so the
     common case costs one byte. *)
  match Batch.stamps batch with
  | None -> put_u8 buf 0
  | Some st ->
      put_u8 buf 1;
      Array.iter (put_i64 buf) st

let put_query_info buf { q_name; q_kind; q_schema } =
  put_str buf q_name;
  put_str buf q_kind;
  put_schema buf q_schema

let put_payload buf = function
  | Hello { version; peer } ->
      put_u16 buf version;
      put_str buf peer
  | List_queries | Bye -> ()
  | Queries qs ->
      put_u16 buf (List.length qs);
      List.iter (put_query_info buf) qs
  | Subscribe name | Publish name -> put_str buf name
  | Subscribed { name; schema; sub_id } ->
      put_str buf name;
      put_schema buf schema;
      put_i64 buf sub_id
  | Publish_ok { iface; schema } ->
      put_str buf iface;
      put_schema buf schema
  | Batch b -> put_batch buf b
  | Err e -> put_str buf e
  | Resume { name; sub_id; token } ->
      put_str buf name;
      put_i64 buf sub_id;
      put_i64 buf token
  | Heartbeat -> ()

let encode msg =
  let payload = Buffer.create 64 in
  put_payload payload msg;
  let n = Buffer.length payload in
  if n > max_payload then
    invalid_arg (Printf.sprintf "Wire.encode: %s payload %d exceeds max_payload" (msg_label msg) n);
  let frame = Buffer.create (header_len + n) in
  Buffer.add_string frame "GSW";
  put_u8 frame protocol_version;
  put_u8 frame (tag_of_msg msg);
  put_u32 frame n;
  Buffer.add_buffer frame payload;
  Buffer.to_bytes frame

(* ------------------------------ decoding ------------------------------- *)

(* The payload parser reads through a bounds-checked cursor; any
   out-of-bounds read or bad tag raises [Bad], caught once at the decode
   boundary — the exception never escapes this module. *)
exception Bad of string

type cursor = { b : bytes; mutable pos : int; stop : int }

let need cur n what =
  if cur.stop - cur.pos < n then raise (Bad (Printf.sprintf "truncated %s" what))

let get_u8 cur what =
  need cur 1 what;
  let v = Char.code (Bytes.get cur.b cur.pos) in
  cur.pos <- cur.pos + 1;
  v

let get_u16 cur what =
  let hi = get_u8 cur what in
  let lo = get_u8 cur what in
  (hi lsl 8) lor lo

let get_u32 cur what =
  let hi = get_u16 cur what in
  let lo = get_u16 cur what in
  (hi lsl 16) lor lo

let get_i64 cur what =
  need cur 8 what;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 cur what))
  done;
  Int64.to_int !v

let get_f64 cur what =
  need cur 8 what;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 cur what))
  done;
  Int64.float_of_bits !v

let get_str cur what =
  let n = get_u32 cur what in
  need cur n what;
  let s = Bytes.sub_string cur.b cur.pos n in
  cur.pos <- cur.pos + n;
  s

let get_value cur =
  match get_u8 cur "value tag" with
  | 0 -> Value.Null
  | 1 -> Value.Bool false
  | 2 -> Value.Bool true
  | 3 -> Value.Int (get_i64 cur "int value")
  | 4 -> Value.Float (get_f64 cur "float value")
  | 5 -> Value.Str (get_str cur "string value")
  | 6 -> Value.Ip (get_u32 cur "ip value")
  | 7 -> (
      (* sketch decode failures (truncation, version skew, corrupt dims)
         surface as Corrupt like any other malformed payload *)
      match Sketch.decode (get_str cur "sketch value") with
      | Ok s -> Value.Sketch s
      | Error e -> raise (Bad ("sketch value: " ^ e)))
  | t -> raise (Bad (Printf.sprintf "unknown value tag %d" t))

let get_ty cur =
  match get_u8 cur "type tag" with
  | 0 -> Ty.Bool
  | 1 -> Ty.Int
  | 2 -> Ty.Float
  | 3 -> Ty.Str
  | 4 -> Ty.Ip
  | 5 -> Ty.Sketch
  | t -> raise (Bad (Printf.sprintf "unknown type tag %d" t))

let dir_of_bit = function 0 -> Order_prop.Asc | _ -> Order_prop.Desc

let get_order cur =
  match get_u8 cur "order tag" with
  | 0 -> Order_prop.Unordered
  | (1 | 2) as t -> Order_prop.Strict (dir_of_bit (t - 1))
  | (3 | 4) as t -> Order_prop.Monotone (dir_of_bit (t - 3))
  | 5 -> Order_prop.Nonrepeating
  | (6 | 7) as t ->
      let d = dir_of_bit (t - 6) in
      Order_prop.Banded (d, get_f64 cur "band")
  | (8 | 9) as t ->
      let d = dir_of_bit (t - 8) in
      let n = get_u16 cur "group field count" in
      let fields = List.init n (fun _ -> get_str cur "group field") in
      Order_prop.In_group (fields, d)
  | t -> raise (Bad (Printf.sprintf "unknown order tag %d" t))

let get_schema cur =
  let n = get_u16 cur "field count" in
  let fields =
    List.init n (fun _ ->
        let name = get_str cur "field name" in
        let ty = get_ty cur in
        let order = get_order cur in
        { Schema.name; ty; order })
  in
  match Schema.make fields with
  | s -> s
  | exception Invalid_argument e -> raise (Bad ("schema: " ^ e))

let get_tuple cur =
  let arity = get_u16 cur "tuple arity" in
  (* cheap pre-check: a tuple value is at least one tag byte, so a lying
     arity cannot make us allocate an array bigger than the payload *)
  need cur arity "tuple values";
  Array.init arity (fun _ -> get_value cur)

let get_punct cur =
  let n = get_u16 cur "punct bound count" in
  List.init n (fun _ ->
      let idx = get_u16 cur "punct field index" in
      (idx, get_value cur))

let get_batch cur =
  let n = get_u32 cur "batch tuple count" in
  (* each tuple costs at least 2 bytes of arity on the wire *)
  need cur (2 * n) "batch tuples";
  let tuples = Array.init n (fun _ -> get_tuple cur) in
  let ctrl =
    match get_u8 cur "batch control tag" with
    | 0 -> None
    | 1 -> Some (Item.Punct (get_punct cur))
    | 2 -> Some Item.Flush
    | 3 -> Some Item.Eof
    | 4 -> Some (Item.Error (get_str cur "error control"))
    | 5 -> Some (Item.Gap (get_i64 cur "gap control"))
    | t -> raise (Bad (Printf.sprintf "unknown batch control tag %d" t))
  in
  let stamps =
    match get_u8 cur "batch stamp flag" with
    | 0 -> None
    | 1 ->
        need cur (8 * n) "batch stamps";
        Some (Array.init n (fun _ -> get_i64 cur "batch stamp"))
    | t -> raise (Bad (Printf.sprintf "unknown batch stamp flag %d" t))
  in
  Batch.make ?stamps tuples ctrl

let get_query_info cur =
  let q_name = get_str cur "query name" in
  let q_kind = get_str cur "query kind" in
  let q_schema = get_schema cur in
  { q_name; q_kind; q_schema }

let parse_payload tag cur =
  match tag with
  | 1 ->
      let version = get_u16 cur "hello version" in
      let peer = get_str cur "hello peer" in
      Hello { version; peer }
  | 2 -> List_queries
  | 3 ->
      let n = get_u16 cur "query count" in
      Queries (List.init n (fun _ -> get_query_info cur))
  | 4 -> Subscribe (get_str cur "subscribe name")
  | 5 ->
      let name = get_str cur "subscribed name" in
      let schema = get_schema cur in
      let sub_id = get_i64 cur "subscribed sub id" in
      Subscribed { name; schema; sub_id }
  | 6 -> Publish (get_str cur "publish iface")
  | 7 ->
      let iface = get_str cur "publish_ok iface" in
      let schema = get_schema cur in
      Publish_ok { iface; schema }
  | 8 -> Batch (get_batch cur)
  | 9 -> Err (get_str cur "error text")
  | 10 -> Bye
  | 11 ->
      let name = get_str cur "resume name" in
      let sub_id = get_i64 cur "resume sub id" in
      let token = get_i64 cur "resume token" in
      Resume { name; sub_id; token }
  | 12 -> Heartbeat
  | t -> raise (Bad (Printf.sprintf "unknown message type %d" t))

type decoded = Frame of msg * int | Need_more | Corrupt of string

let decode b ~pos ~len =
  let len = min len (Bytes.length b) in
  if pos < 0 || pos > len then Corrupt "decode: position out of range"
  else if len - pos < header_len then Need_more
  else if not (Bytes.get b pos = 'G' && Bytes.get b (pos + 1) = 'S' && Bytes.get b (pos + 2) = 'W')
  then Corrupt "bad magic: not a Gigascope wire frame"
  else if Char.code (Bytes.get b (pos + 3)) <> protocol_version then
    Corrupt
      (Printf.sprintf "protocol version %d, expected %d"
         (Char.code (Bytes.get b (pos + 3)))
         protocol_version)
  else begin
    let tag = Char.code (Bytes.get b (pos + 4)) in
    let paylen =
      let g i = Char.code (Bytes.get b (pos + 5 + i)) in
      (g 0 lsl 24) lor (g 1 lsl 16) lor (g 2 lsl 8) lor g 3
    in
    if paylen > max_payload then
      Corrupt (Printf.sprintf "frame claims %d payload bytes (max %d)" paylen max_payload)
    else if len - pos - header_len < paylen then Need_more
    else
      let cur = { b; pos = pos + header_len; stop = pos + header_len + paylen } in
      match parse_payload tag cur with
      | msg ->
          if cur.pos <> cur.stop then
            Corrupt
              (Printf.sprintf "%s frame: %d trailing payload bytes" (msg_label msg)
                 (cur.stop - cur.pos))
          else Frame (msg, cur.stop)
      | exception Bad e -> Corrupt e
      | exception Invalid_argument e -> Corrupt e
  end
