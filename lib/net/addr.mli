(** Endpoint addresses for the network data plane.

    Two transports, one textual form:
    - ["unix:/path/to.sock"] — a Unix-domain socket (same-host, the
      cheap transport for co-located gsq processes);
    - ["host:port"] or [":port"] — TCP (the cross-host transport;
      [":port"] listens on every interface). *)

type t = Unix_sock of string | Tcp of string * int

val of_string : string -> (t, string) result
val to_string : t -> string

val to_sockaddr : t -> (Unix.sockaddr, string) result
(** Resolves the host name for TCP addresses; [Error] when resolution
    fails. *)

val of_sockaddr : Unix.sockaddr -> t
(** Render a bound socket's address (how a listener on port 0 reports
    the port it actually got). *)
