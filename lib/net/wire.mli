(** The Gigascope wire protocol: a length-prefixed binary frame codec.

    This is the network analogue of the shared-memory ring buffers
    between FTAs (paper §2.2): the unit of transfer is a whole
    {!Gigascope_rts.Batch}, so a run of tuples costs one frame, and
    punctuation/EOF travel in-band as the batch's sealing control item —
    a remote subscriber sees exactly the item sequence a local
    {!Gigascope_rts.Manager.subscribe} channel carries.

    Frame layout (all integers big-endian):
    {v
      offset  size  field
      0       3     magic "GSW"
      3       1     protocol version (2)
      4       1     message type
      5       4     payload length (bounded by max_payload)
      9       n     payload
    v}

    Version 2 extends the batch frame with an optional latency-stamp
    column: after the control-item section, an unconditional flag byte
    (0 = absent, 1 = present) followed, when present, by one i64 ingest
    stamp per tuple (0 = unstamped). Version 1 frames are rejected as
    [Corrupt] — both peers live in this repository.

    The codec is pure — encode and decode work over [bytes], no IO — and
    total: {!decode} never raises, whatever the input; malformed input
    yields [Corrupt], a partial frame yields [Need_more]. That contract
    is fuzz-tested (test/test_net.ml): a monitor's control port is
    attack surface just like its packet path. *)

module Schema = Gigascope_rts.Schema
module Value = Gigascope_rts.Value
module Item = Gigascope_rts.Item
module Batch = Gigascope_rts.Batch

val protocol_version : int

val header_len : int
(** Bytes before the payload: magic + version + type + length. *)

val max_payload : int
(** Upper bound on the payload length field (16 MiB). A frame claiming
    more is [Corrupt] — a decoder must never be talked into buffering
    unbounded data by a 4-byte header. *)

(** A listed query: its registered name, node kind ([source] / [lfta] /
    [hfta]) and output schema. *)
type query_info = { q_name : string; q_kind : string; q_schema : Schema.t }

type msg =
  | Hello of { version : int; peer : string }
      (** First frame in both directions. [peer] is a free-form
          identity string (diagnostics only). *)
  | List_queries
  | Queries of query_info list
  | Subscribe of string  (** attach to the named query's output stream *)
  | Subscribed of { name : string; schema : Schema.t; sub_id : int }
      (** [sub_id] names the server-side egress queue; quote it in a
          [Resume] to re-attach to the same queue after a reconnect. *)
  | Publish of string  (** feed the named ingest interface *)
  | Publish_ok of { iface : string; schema : Schema.t }
  | Batch of Batch.t
      (** Data plane: tuples plus at most one sealing control item.
          EOF travels as a batch sealed by [Item.Eof]. The batch's
          latency-stamp column ({!Gigascope_rts.Batch.stamps}), when
          present, rides the frame and round-trips exactly. *)
  | Err of string
  | Bye  (** clean close *)
  | Resume of { name : string; sub_id : int; token : int }
      (** Re-attach to subscription [sub_id] of query [name] after a
          reconnect. [token] is the count of tuples the client has
          already delivered; the server replays anything newer still in
          the egress queue, or seals the first batch with an explicit
          [Item.Gap] when tuples are unrecoverable. *)
  | Heartbeat
      (** Liveness probe. Carries no payload; either side may send it
          when a connection idles so the peer's read deadline keeps
          proving the link is alive. *)

val encode : msg -> bytes
(** A complete frame, header included. Raises [Invalid_argument] only if
    the message cannot fit in [max_payload] (e.g. a pathological string
    value); every message a running system produces encodes. *)

type decoded =
  | Frame of msg * int  (** decoded message and the offset just past it *)
  | Need_more  (** a prefix of a valid frame: read more bytes *)
  | Corrupt of string  (** not this protocol, or a malformed payload *)

val decode : bytes -> pos:int -> len:int -> decoded
(** Decode one frame from [bytes] within [\[pos, len)]. Total: returns
    [Corrupt] (never raises) on bad magic, unknown version or type,
    oversized length, truncated or trailing payload bytes, and any
    malformed payload content. *)

val msg_label : msg -> string
(** Short constructor name, for logs. *)
