(** Framed, counted IO over a socket: the transport under {!Server} and
    {!Client}.

    One [recv]/[send] moves one {!Wire.msg}. The receive side buffers
    partial frames ({!Wire.decode}'s [Need_more]) and fails cleanly —
    [Error], never an exception — on corrupt frames, oversized frames,
    peer resets and half-written tails. Sends are serialized by an
    internal lock so a writer thread and a control reply cannot
    interleave bytes on the wire. *)

type counters = {
  frames_in : Gigascope_obs.Metrics.Counter.t;
  frames_out : Gigascope_obs.Metrics.Counter.t;
  bytes_in : Gigascope_obs.Metrics.Counter.t;
  bytes_out : Gigascope_obs.Metrics.Counter.t;
}

val counters_in : Gigascope_obs.Metrics.t -> prefix:string -> counters
(** Get-or-create the four counters under [prefix.frames_in] etc., so
    every connection of one server shares the same cells. *)

type t

val of_fd : ?counters:counters -> ?peer:string -> Unix.file_descr -> t

val peer : t -> string

val set_read_deadline : t -> float -> unit
(** Fail a blocked {!recv} with ["recv: timeout (read deadline
    exceeded)"] after this many seconds of silence (SO_RCVTIMEO);
    [0.] disables. The connection stays usable only in principle —
    callers should treat the timeout as connection loss. *)

val set_write_deadline : t -> float -> unit
(** Same for {!send} (SO_SNDTIMEO). *)

val send : t -> Wire.msg -> (unit, string) result

val recv : t -> (Wire.msg, string) result
(** Blocking. [Error] on clean close ("connection closed"), corrupt
    input, or any socket error. After an [Error] the connection is
    unusable; {!close} it. *)

val close : t -> unit
(** Idempotent; concurrent [recv]/[send] on other threads fail with
    [Error] rather than blocking forever. *)

val is_closed : t -> bool
