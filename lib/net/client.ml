module Rts = Gigascope_rts
module Item = Rts.Item
module Batch = Rts.Batch

let ( let* ) = Result.bind

type t = {
  conn : Conn.t;
  mutable server : string;
  mutable pending : Item.t list;  (* unbatched items not yet handed out *)
  mutable at_eof : bool;
  mutable last_bounds : (int * Rts.Value.t) list;
}

let server_name t = t.server

let connect ?(peer_name = "gsq-client") addr =
  let* sockaddr = Addr.to_sockaddr addr in
  match
    let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
    (try Unix.connect fd sockaddr
     with exn ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise exn);
    fd
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "connect %s: %s" (Addr.to_string addr) (Unix.error_message e))
  | fd -> (
      let conn = Conn.of_fd ~peer:(Addr.to_string addr) fd in
      let t = { conn; server = "?"; pending = []; at_eof = false; last_bounds = [] } in
      let* () =
        Conn.send conn (Wire.Hello { version = Wire.protocol_version; peer = peer_name })
      in
      match Conn.recv conn with
      | Ok (Wire.Hello { peer; _ }) ->
          t.server <- peer;
          Ok t
      | Ok (Wire.Err e) ->
          Conn.close conn;
          Error ("server refused: " ^ e)
      | Ok msg ->
          Conn.close conn;
          Error (Printf.sprintf "expected hello, got %s" (Wire.msg_label msg))
      | Error e ->
          Conn.close conn;
          Error e)

let list t =
  let* () = Conn.send t.conn Wire.List_queries in
  match Conn.recv t.conn with
  | Ok (Wire.Queries qs) -> Ok qs
  | Ok (Wire.Err e) -> Error e
  | Ok msg -> Error (Printf.sprintf "expected queries, got %s" (Wire.msg_label msg))
  | Error _ as e -> e

let subscribe t name =
  let* () = Conn.send t.conn (Wire.Subscribe name) in
  match Conn.recv t.conn with
  | Ok (Wire.Subscribed { schema; _ }) -> Ok schema
  | Ok (Wire.Err e) -> Error e
  | Ok msg -> Error (Printf.sprintf "expected subscribed, got %s" (Wire.msg_label msg))
  | Error _ as e -> e

let rec next t =
  match t.pending with
  | item :: rest ->
      t.pending <- rest;
      (match item with Item.Punct bounds -> t.last_bounds <- bounds | _ -> ());
      if item = Item.Eof then begin
        t.at_eof <- true;
        Ok None
      end
      else Ok (Some item)
  | [] ->
      if t.at_eof then Ok None
      else (
        match Conn.recv t.conn with
        | Ok (Wire.Batch b) ->
            t.pending <- Batch.to_items b;
            next t
        | Ok Wire.Bye ->
            t.at_eof <- true;
            Ok None
        | Ok (Wire.Err e) -> Error e
        | Ok msg -> Error (Printf.sprintf "expected batch, got %s" (Wire.msg_label msg))
        | Error _ as e -> e)

let iter t f =
  let rec go () =
    match next t with
    | Ok (Some item) ->
        f item;
        go ()
    | Ok None -> Ok ()
    | Error _ as e -> e
  in
  go ()

let publish t ~iface =
  let* () = Conn.send t.conn (Wire.Publish iface) in
  match Conn.recv t.conn with
  | Ok (Wire.Publish_ok { schema; _ }) -> Ok schema
  | Ok (Wire.Err e) -> Error e
  | Ok msg -> Error (Printf.sprintf "expected publish_ok, got %s" (Wire.msg_label msg))
  | Error _ as e -> e

let send_batch t batch = Conn.send t.conn (Wire.Batch batch)

let send_tuple t values = send_batch t (Batch.of_item (Item.Tuple values))

let finish t = send_batch t (Batch.make [||] (Some Item.Eof))

let close t = Conn.close t.conn

let source t =
  let pull () =
    match next t with
    | Ok (Some item) -> Some item
    | Ok None -> None
    | Error _ ->
        (* a lost upstream ends the stream; hanging the engine helps no one *)
        None
  in
  let clock () = t.last_bounds in
  { Rts.Node.pull; clock }

let add_remote_interface engine ~name addr ~query =
  let* client = connect addr in
  match subscribe client query with
  | Error e ->
      close client;
      Error e
  | Ok schema ->
      let src = source client in
      Gigascope.Engine.add_custom_source engine ~name ~schema ~pull:src.Rts.Node.pull
        ~clock:src.Rts.Node.clock
