module Rts = Gigascope_rts
module Item = Rts.Item
module Batch = Rts.Batch
module Metrics = Gigascope_obs.Metrics
module Prng = Gigascope_util.Prng

let ( let* ) = Result.bind

type reconnect = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default_reconnect =
  { attempts = 5; base_delay = 0.05; max_delay = 2.0; jitter = 0.5; seed = 0 }

type t = {
  mutable conn : Conn.t;
  addr : Addr.t;
  peer_name : string;
  reconnect : reconnect option;
  idle_timeout : float option;
  rng : Prng.t;
  c_reconnects : Metrics.Counter.t;
  c_heartbeats : Metrics.Counter.t;
  c_gaps : Metrics.Counter.t;
  mutable server : string;
  mutable sub : (string * int) option;  (* subscribed query, server-side sub id *)
  mutable delivered : int;  (* tuples handed to the application: the resume token *)
  mutable pending : Item.t list;  (* unbatched items not yet handed out *)
  mutable at_eof : bool;
  mutable last_bounds : (int * Rts.Value.t) list;
}

let server_name t = t.server
let delivered t = t.delivered

(* One dial + Hello exchange; shared by [connect] and the redial loop. *)
let dial ~peer_name ~idle_timeout addr =
  let* sockaddr = Addr.to_sockaddr addr in
  match
    let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
    (try Unix.connect fd sockaddr
     with exn ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise exn);
    fd
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "connect %s: %s" (Addr.to_string addr) (Unix.error_message e))
  | fd -> (
      let conn = Conn.of_fd ~peer:(Addr.to_string addr) fd in
      (match idle_timeout with Some s when s > 0.0 -> Conn.set_read_deadline conn s | _ -> ());
      let* () =
        Conn.send conn (Wire.Hello { version = Wire.protocol_version; peer = peer_name })
      in
      match Conn.recv conn with
      | Ok (Wire.Hello { peer; _ }) -> Ok (conn, peer)
      | Ok (Wire.Err e) ->
          Conn.close conn;
          Error ("server refused: " ^ e)
      | Ok msg ->
          Conn.close conn;
          Error (Printf.sprintf "expected hello, got %s" (Wire.msg_label msg))
      | Error e ->
          Conn.close conn;
          Error e)

let connect ?(peer_name = "gsq-client") ?reconnect ?idle_timeout ?metrics addr =
  let* conn, server = dial ~peer_name ~idle_timeout addr in
  let cnt name =
    match metrics with Some reg -> Metrics.counter reg name | None -> Metrics.Counter.make ()
  in
  let seed = match reconnect with Some r -> r.seed | None -> 0 in
  Ok
    {
      conn;
      addr;
      peer_name;
      reconnect;
      idle_timeout;
      rng = Prng.create seed;
      c_reconnects = cnt "net.reconnects";
      c_heartbeats = cnt "net.heartbeats.recv";
      c_gaps = cnt "net.gaps";
      server;
      sub = None;
      delivered = 0;
      pending = [];
      at_eof = false;
      last_bounds = [];
    }

let list t =
  let* () = Conn.send t.conn Wire.List_queries in
  match Conn.recv t.conn with
  | Ok (Wire.Queries qs) -> Ok qs
  | Ok (Wire.Err e) -> Error e
  | Ok msg -> Error (Printf.sprintf "expected queries, got %s" (Wire.msg_label msg))
  | Error _ as e -> e

let subscribe t name =
  let* () = Conn.send t.conn (Wire.Subscribe name) in
  match Conn.recv t.conn with
  | Ok (Wire.Subscribed { schema; sub_id; _ }) ->
      t.sub <- Some (name, sub_id);
      Ok schema
  | Ok (Wire.Err e) -> Error e
  | Ok msg -> Error (Printf.sprintf "expected subscribed, got %s" (Wire.msg_label msg))
  | Error _ as e -> e

(* Redial with exponential backoff plus jitter, then [Resume] the
   subscription with the delivered-tuple count as the token. The jitter
   comes from a seeded generator so a chaos run retries at the same
   instants every time. A server that explicitly refuses the resume ends
   the loop at once — only transport failures are worth retrying. *)
let try_resume t =
  match (t.reconnect, t.sub) with
  | None, _ -> Error "connection lost (no reconnect configured)"
  | _, None -> Error "connection lost (not subscribed)"
  | Some rc, Some (name, sub_id) ->
      let rec attempt n =
        if n > rc.attempts then
          Error (Printf.sprintf "reconnect: gave up after %d attempts" rc.attempts)
        else begin
          let backoff =
            Float.min rc.max_delay (rc.base_delay *. (2.0 ** float_of_int (n - 1)))
          in
          Thread.delay (backoff *. (1.0 +. (rc.jitter *. Prng.float t.rng 1.0)));
          match dial ~peer_name:t.peer_name ~idle_timeout:t.idle_timeout t.addr with
          | Error _ -> attempt (n + 1)
          | Ok (conn, server) -> (
              match
                Conn.send conn (Wire.Resume { name; sub_id; token = t.delivered })
              with
              | Error _ ->
                  Conn.close conn;
                  attempt (n + 1)
              | Ok () -> (
                  match Conn.recv conn with
                  | Ok (Wire.Subscribed { sub_id = id; _ }) ->
                      Metrics.Counter.incr t.c_reconnects;
                      t.conn <- conn;
                      t.server <- server;
                      t.sub <- Some (name, id);
                      Ok ()
                  | Ok (Wire.Err e) ->
                      Conn.close conn;
                      Error ("resume refused: " ^ e)
                  | Ok _ | Error _ ->
                      Conn.close conn;
                      attempt (n + 1)))
        end
      in
      attempt 1

let rec next t =
  match t.pending with
  | item :: rest ->
      t.pending <- rest;
      (match item with
      | Item.Punct bounds -> t.last_bounds <- bounds
      | Item.Tuple _ -> t.delivered <- t.delivered + 1
      | Item.Gap _ -> Metrics.Counter.incr t.c_gaps
      | Item.Flush | Item.Error _ | Item.Eof -> ());
      if item = Item.Eof then begin
        t.at_eof <- true;
        Ok None
      end
      else Ok (Some item)
  | [] ->
      if t.at_eof then Ok None
      else (
        match Conn.recv t.conn with
        | Ok (Wire.Batch b) ->
            t.pending <- Batch.to_items b;
            next t
        | Ok Wire.Heartbeat ->
            Metrics.Counter.incr t.c_heartbeats;
            next t
        | Ok Wire.Bye ->
            t.at_eof <- true;
            Ok None
        | Ok (Wire.Err e) -> Error e
        | Ok msg -> Error (Printf.sprintf "expected batch, got %s" (Wire.msg_label msg))
        | Error e -> (
            (* the socket died (or the idle deadline fired with no
               heartbeat): self-heal if configured, else surface it *)
            Conn.close t.conn;
            match try_resume t with
            | Ok () -> next t
            | Error e2 -> Error (if e2 = e then e else e ^ "; " ^ e2)))

let iter t f =
  let rec go () =
    match next t with
    | Ok (Some item) ->
        f item;
        go ()
    | Ok None -> Ok ()
    | Error _ as e -> e
  in
  go ()

let publish t ~iface =
  let* () = Conn.send t.conn (Wire.Publish iface) in
  match Conn.recv t.conn with
  | Ok (Wire.Publish_ok { schema; _ }) -> Ok schema
  | Ok (Wire.Err e) -> Error e
  | Ok msg -> Error (Printf.sprintf "expected publish_ok, got %s" (Wire.msg_label msg))
  | Error _ as e -> e

let send_batch t batch = Conn.send t.conn (Wire.Batch batch)

let send_tuple t values = send_batch t (Batch.of_item (Item.Tuple values))

let finish t = send_batch t (Batch.make [||] (Some Item.Eof))

let close t = Conn.close t.conn

let source t =
  let failed = ref false in
  let pull () =
    if !failed then None
    else
      match next t with
      | Ok (Some item) -> Some item
      | Ok None -> None
      | Error e ->
          (* a lost upstream ends the stream explicitly: one in-band
             Error (the node follows with Eof), never a hang *)
          failed := true;
          Some (Item.Error e)
  in
  let clock () = t.last_bounds in
  { Rts.Node.pull; clock }

let add_remote_interface ?reconnect ?idle_timeout engine ~name addr ~query =
  let* client = connect ?reconnect ?idle_timeout ~metrics:(Gigascope.Engine.metrics engine) addr in
  match subscribe client query with
  | Error e ->
      close client;
      Error e
  | Ok schema ->
      let src = source client in
      Gigascope.Engine.add_custom_source engine ~name ~schema ~pull:src.Rts.Node.pull
        ~clock:src.Rts.Node.clock
