module E = Gigascope.Engine
module Rts = Gigascope_rts
module Item = Rts.Item
module Schema = Rts.Schema
module Manager = Rts.Manager
module Node = Rts.Node
module Metrics = Gigascope_obs.Metrics
module Clock = Gigascope_obs.Clock

let log_src = Logs.Src.create "gigascope.net" ~doc:"Gigascope network data plane"

module Log = (val Logs.src_log log_src : Logs.LOG)

type policy = Block | Drop_newest | Disconnect

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "block" -> Ok Block
  | "drop" | "drop_newest" | "drop-newest" -> Ok Drop_newest
  | "disconnect" -> Ok Disconnect
  | other -> Error (Printf.sprintf "unknown slow-consumer policy %S (block|drop|disconnect)" other)

let policy_to_string = function
  | Block -> "block"
  | Drop_newest -> "drop_newest"
  | Disconnect -> "disconnect"

(* Per-subscriber bounded egress queue. The engine-side fanout callback
   enqueues under [mu]; the connection's writer thread drains. The two
   condvars make both directions blockable: [not_empty] parks the
   writer, [not_full] parks the engine under the Block policy. *)
(* The egress queue carries each item with its latency stamp (0 = none):
   a sampled tuple's ingest stamp survives queueing so the writer can
   close the ingest→send measurement at the socket. *)
type sub = {
  sub_id : int;
  sub_query : string;
  sq : (Item.t * int) Queue.t;
  s_latency : Metrics.Histogram.t;  (* shared per query: net.latency.<q> *)
  smu : Mutex.t;
  s_not_empty : Condition.t;
  s_not_full : Condition.t;
  s_capacity : int;
  mutable s_items : int;
  mutable s_eof : bool;  (* EOF is in (or has passed through) the queue *)
  mutable s_dead : bool;
  mutable s_disconnected : bool;  (* dead because the Disconnect policy fired *)
  (* Resume bookkeeping. A writer that loses its socket {e orphans} the
     sub instead of killing it: the queue keeps filling (never blocking
     the engine — Block degrades to dropping for an orphan), and a
     client quoting [sub_id] in a [Resume] re-attaches to it. [s_sent]
     counts tuples popped for sending; the client's resume token counts
     tuples actually delivered, so [s_sent - token] is exactly the
     in-flight loss to announce as a leading [Item.Gap]. Tuples dropped
     by policy accumulate in [s_pending_gap] and enter the queue as an
     in-band [Item.Gap] marker in their true stream position, so replay
     after a resume reports every hole. *)
  mutable s_orphaned : bool;
  mutable s_sent : int;
  mutable s_pending_gap : int;
  mutable s_conn : Conn.t option;  (* attached writer's connection, for heartbeats *)
}

(* A network-fed source: publishers push, the engine's source pull pops.
   Bounded, so a fast publisher is backpressured through TCP instead of
   ballooning the heap. *)
type ingest = {
  ing_name : string;
  ing_schema : Schema.t;
  ingq : Item.t Queue.t;
  ing_mu : Mutex.t;
  ing_not_empty : Condition.t;
  ing_not_full : Condition.t;
  ing_capacity : int;
  mutable ing_closed : bool;
  mutable ing_busy : bool;
  mutable ing_clock : (int * Rts.Value.t) list;  (* last punctuation bounds seen *)
}

type t = {
  engine : E.t;
  policy : policy;
  egress_capacity : int;
  peer_name : string;
  heartbeat : float option;  (* interval (s) of liveness frames to subscribers *)
  mu : Mutex.t;
  subs : (int, sub) Hashtbl.t;
  by_query : (string, sub list) Hashtbl.t;
  attached : (string, unit) Hashtbl.t;
  ingests : (string, ingest) Hashtbl.t;
  conns : (int, Conn.t) Hashtbl.t;
  mutable listeners : (Unix.file_descr * Addr.t) list;
  mutable threads : Thread.t list;
  mutable running : bool;
  mutable hb_started : bool;
  mutable next_id : int;
  counters : Conn.counters;
  c_connections : Metrics.Counter.t;
  c_subscribers : Metrics.Counter.t;
  c_drops : Metrics.Counter.t;
  c_disconnects : Metrics.Counter.t;
  c_errors : Metrics.Counter.t;
  c_ingest_tuples : Metrics.Counter.t;
  c_heartbeats : Metrics.Counter.t;
  c_gaps : Metrics.Counter.t;
  c_resumes : Metrics.Counter.t;
}

let qkey = String.lowercase_ascii

let create ?(policy = Drop_newest) ?(egress_capacity = 4096) ?(peer_name = "gsq-server")
    ?heartbeat engine =
  let reg = E.metrics engine in
  let t =
    {
      engine;
      policy;
      egress_capacity = max 1 egress_capacity;
      peer_name;
      heartbeat;
      mu = Mutex.create ();
      subs = Hashtbl.create 16;
      by_query = Hashtbl.create 16;
      attached = Hashtbl.create 16;
      ingests = Hashtbl.create 4;
      conns = Hashtbl.create 16;
      listeners = [];
      threads = [];
      running = true;
      hb_started = false;
      next_id = 0;
      counters = Conn.counters_in reg ~prefix:"net";
      c_connections = Metrics.counter reg "net.connections";
      c_subscribers = Metrics.counter reg "net.subscribers";
      c_drops = Metrics.counter reg "net.subscriber.drops";
      c_disconnects = Metrics.counter reg "net.subscriber.disconnects";
      c_errors = Metrics.counter reg "net.errors";
      c_ingest_tuples = Metrics.counter reg "net.ingest.tuples";
      c_heartbeats = Metrics.counter reg "net.heartbeats.sent";
      c_gaps = Metrics.counter reg "net.gaps";
      c_resumes = Metrics.counter reg "net.resumes";
    }
  in
  (* Polled gauges close over this server; guard against a second server
     on the same engine re-attaching the same names. *)
  let attach_gauge name f = if not (Metrics.mem reg name) then Metrics.attach_gauge_fn reg name f in
  attach_gauge "net.connections.active" (fun () ->
      Mutex.lock t.mu;
      let n = Hashtbl.length t.conns in
      Mutex.unlock t.mu;
      float_of_int n);
  attach_gauge "net.subscribers.active" (fun () ->
      Mutex.lock t.mu;
      let n = Hashtbl.length t.subs in
      Mutex.unlock t.mu;
      float_of_int n);
  attach_gauge "net.subscriber.queue_depth" (fun () ->
      Mutex.lock t.mu;
      let depth = Hashtbl.fold (fun _ s acc -> acc + s.s_items) t.subs 0 in
      Mutex.unlock t.mu;
      float_of_int depth);
  t

(* --------------------------- egress fanout ------------------------------ *)

(* Engine side: runs on whatever domain delivers the node's output.
   Control items always land (bounded overshoot) so stream position and
   shutdown survive any policy; only tuples are subject to it. *)
let enqueue t sub item stamp =
  Mutex.lock sub.smu;
  if not sub.s_dead then begin
    let accept () =
      (* A pending drop run enters the queue first, as one Gap marker in
         its true stream position — loss is reported, never silent. *)
      if sub.s_pending_gap > 0 then begin
        Queue.push (Item.Gap sub.s_pending_gap, 0) sub.sq;
        sub.s_items <- sub.s_items + 1;
        sub.s_pending_gap <- 0
      end;
      Queue.push (item, stamp) sub.sq;
      sub.s_items <- sub.s_items + 1;
      (match item with Item.Eof -> sub.s_eof <- true | _ -> ());
      Condition.signal sub.s_not_empty
    in
    let drop () =
      sub.s_pending_gap <- sub.s_pending_gap + 1;
      Metrics.Counter.incr t.c_drops
    in
    if (not (Item.is_tuple item)) || sub.s_items < sub.s_capacity then accept ()
    else
      match t.policy with
      | Block ->
          (* an orphaned sub has no writer to drain it; blocking the
             engine on one would trade a client failure for a wedge *)
          if sub.s_orphaned then drop ()
          else begin
            while sub.s_items >= sub.s_capacity && not sub.s_dead && not sub.s_orphaned do
              Condition.wait sub.s_not_full sub.smu
            done;
            if not sub.s_dead then if sub.s_orphaned then drop () else accept ()
          end
      | Drop_newest -> drop ()
      | Disconnect ->
          if sub.s_orphaned then drop ()
          else begin
            sub.s_dead <- true;
            sub.s_disconnected <- true;
            Metrics.Counter.incr t.c_disconnects;
            Condition.broadcast sub.s_not_empty
          end
  end;
  Mutex.unlock sub.smu

(* Whole-batch fanout keeps the stamp column alongside the tuples; the
   per-item egress queues then carry each tuple's stamp individually. *)
let fanout t qname batch =
  let targets =
    Mutex.lock t.mu;
    let l = Option.value (Hashtbl.find_opt t.by_query qname) ~default:[] in
    Mutex.unlock t.mu;
    l
  in
  let tuples = Rts.Batch.tuples batch in
  let stamps = Rts.Batch.stamps batch in
  List.iter
    (fun sub ->
      Array.iteri
        (fun i v ->
          let s = match stamps with Some st -> st.(i) | None -> 0 in
          enqueue t sub (Item.Tuple v) s)
        tuples;
      match Rts.Batch.ctrl batch with
      | Some ctrl -> enqueue t sub ctrl 0
      | None -> ())
    targets

let attach_queries t =
  Mutex.lock t.mu;
  let missing =
    List.filter
      (fun node -> not (Hashtbl.mem t.attached (qkey (Node.name node))))
      (Manager.nodes (E.manager t.engine))
  in
  List.iter (fun node -> Hashtbl.replace t.attached (qkey (Node.name node)) ()) missing;
  Mutex.unlock t.mu;
  List.iter
    (fun node ->
      let qname = qkey (Node.name node) in
      match Manager.on_batch (E.manager t.engine) (Node.name node) (fun b -> fanout t qname b) with
      | Ok () -> ()
      | Error e -> Log.warn (fun m -> m "cannot attach fanout to %s: %s" (Node.name node) e))
    missing

(* ------------------------------ ingest ---------------------------------- *)

let add_ingest t ~name ~schema ?(capacity = 4096) () =
  let ing =
    {
      ing_name = name;
      ing_schema = schema;
      ingq = Queue.create ();
      ing_mu = Mutex.create ();
      ing_not_empty = Condition.create ();
      ing_not_full = Condition.create ();
      ing_capacity = max 1 capacity;
      ing_closed = false;
      ing_busy = false;
      ing_clock = [];
    }
  in
  let pull () =
    Mutex.lock ing.ing_mu;
    while Queue.is_empty ing.ingq && not ing.ing_closed do
      Condition.wait ing.ing_not_empty ing.ing_mu
    done;
    let item = Queue.take_opt ing.ingq in
    (match item with
    | Some (Item.Punct bounds) -> ing.ing_clock <- bounds
    | Some _ | None -> ());
    if item <> None then Condition.signal ing.ing_not_full;
    Mutex.unlock ing.ing_mu;
    item
  in
  let clock () =
    Mutex.lock ing.ing_mu;
    let bounds = ing.ing_clock in
    Mutex.unlock ing.ing_mu;
    bounds
  in
  Mutex.lock t.mu;
  let dup = Hashtbl.mem t.ingests (qkey name) in
  if not dup then Hashtbl.replace t.ingests (qkey name) ing;
  Mutex.unlock t.mu;
  if dup then Error (Printf.sprintf "ingest %s already registered" name)
  else
    match E.add_custom_source t.engine ~name ~schema ~pull ~clock with
    | Ok () -> Ok ()
    | Error _ as e ->
        Mutex.lock t.mu;
        Hashtbl.remove t.ingests (qkey name);
        Mutex.unlock t.mu;
        e

let close_ingest ing =
  Mutex.lock ing.ing_mu;
  ing.ing_closed <- true;
  Condition.broadcast ing.ing_not_empty;
  Condition.broadcast ing.ing_not_full;
  Mutex.unlock ing.ing_mu

(* Publisher side: push one item, blocking when full (TCP backpressure:
   the handler thread stops reading the socket). False once closed. *)
let ingest_push t ing item =
  Mutex.lock ing.ing_mu;
  while Queue.length ing.ingq >= ing.ing_capacity && not ing.ing_closed do
    Condition.wait ing.ing_not_full ing.ing_mu
  done;
  let accepted = not ing.ing_closed in
  if accepted then begin
    Queue.push item ing.ingq;
    if Item.is_tuple item then Metrics.Counter.incr t.c_ingest_tuples;
    Condition.signal ing.ing_not_empty
  end;
  Mutex.unlock ing.ing_mu;
  accepted

(* --------------------------- subscriber side ---------------------------- *)

let add_sub t qname =
  (* get-or-create, so every subscriber of a query shares one egress
     latency histogram under net.latency.<query> *)
  let latency = Metrics.histogram (E.metrics t.engine) ("net.latency." ^ qname) in
  Mutex.lock t.mu;
  t.next_id <- t.next_id + 1;
  let sub =
    {
      sub_id = t.next_id;
      sub_query = qname;
      sq = Queue.create ();
      s_latency = latency;
      smu = Mutex.create ();
      s_not_empty = Condition.create ();
      s_not_full = Condition.create ();
      (* Grow-only auto-sizing: an egress ring smaller than the query's
         certified burst (an LFTA table flush arriving in one step) would
         drop or stall on every epoch boundary. *)
      s_capacity = max t.egress_capacity (E.certified_burst t.engine qname + 64);
      s_items = 0;
      s_eof = false;
      s_dead = false;
      s_disconnected = false;
      s_orphaned = false;
      s_sent = 0;
      s_pending_gap = 0;
      s_conn = None;
    }
  in
  Hashtbl.replace t.subs sub.sub_id sub;
  Hashtbl.replace t.by_query qname
    (sub :: Option.value (Hashtbl.find_opt t.by_query qname) ~default:[]);
  Mutex.unlock t.mu;
  Metrics.Counter.incr t.c_subscribers;
  sub

let remove_sub t sub =
  Mutex.lock t.mu;
  Hashtbl.remove t.subs sub.sub_id;
  (match Hashtbl.find_opt t.by_query sub.sub_query with
  | Some l -> Hashtbl.replace t.by_query sub.sub_query (List.filter (fun s -> s != sub) l)
  | None -> ());
  Mutex.unlock t.mu;
  (* a dead queue must never hold the engine hostage *)
  Mutex.lock sub.smu;
  sub.s_dead <- true;
  Condition.broadcast sub.s_not_full;
  Mutex.unlock sub.smu

let kill_sub sub =
  Mutex.lock sub.smu;
  sub.s_dead <- true;
  sub.s_conn <- None;
  Condition.broadcast sub.s_not_full;
  Condition.broadcast sub.s_not_empty;
  Mutex.unlock sub.smu

(* The writer lost its socket: keep the queue alive for a possible
   [Resume], release any engine thread blocked on it, and make sure the
   engine can never block on it again (see [enqueue]). *)
let orphan_sub sub =
  Mutex.lock sub.smu;
  sub.s_orphaned <- true;
  sub.s_conn <- None;
  Condition.broadcast sub.s_not_full;
  Condition.broadcast sub.s_not_empty;
  Mutex.unlock sub.smu

(* Drain the egress queue to the socket, coalescing runs of tuples into
   one wire batch per run (ctrl items seal, mirroring Rts.Batch).

   [initial_gap] is the loss to announce before any data: the in-flight
   tuples a resumed client missed, or [-1] (unknown) when the original
   queue could not be recovered. A failed send {e orphans} the sub
   rather than killing it — the queue keeps collecting (with in-band gap
   markers once full) so a [Resume] can pick up where the socket died. *)
let writer_loop ?(initial_gap = 0) t conn sub =
  Mutex.lock sub.smu;
  sub.s_conn <- Some conn;
  Mutex.unlock sub.smu;
  let send_batch tuples ctrl =
    (match ctrl with Some (Item.Gap _) -> Metrics.Counter.incr t.c_gaps | _ -> ());
    let vals = Array.of_list (List.rev_map fst tuples) in
    let stamps =
      if List.exists (fun (_, s) -> s <> 0) tuples then
        Some (Array.of_list (List.rev_map snd tuples))
      else None
    in
    let batch = Wire.Batch.make ?stamps vals ctrl in
    match Conn.send conn (Wire.Batch batch) with
    | Ok () ->
        (* egress latency closes here: the stamped tuple has left the
           server for this subscriber's socket *)
        (match stamps with
        | Some st ->
            let now = Clock.now_ns () in
            Array.iter
              (fun s ->
                if s <> 0 then Metrics.Histogram.observe sub.s_latency (now -. float_of_int s))
              st
        | None -> ());
        true
    | Error e ->
        Log.debug (fun m -> m "subscriber %s: %s" (Conn.peer conn) e);
        false
  in
  let rec flush_items items =
    (* items arrive oldest-first; accumulate tuples reversed, seal on ctrl *)
    let rec go tuples = function
      | [] -> if tuples = [] then `Sent else if send_batch tuples None then `Sent else `Dead
      | (Item.Tuple v, s) :: rest -> go ((v, s) :: tuples) rest
      | (((Item.Punct _ | Item.Flush | Item.Error _ | Item.Gap _) as ctrl), _) :: rest ->
          if send_batch tuples (Some ctrl) then go [] rest else `Dead
      | (Item.Eof, _) :: _ -> if send_batch tuples (Some Item.Eof) then `Eof else `Dead
    in
    go [] items
  and loop () =
    Mutex.lock sub.smu;
    while sub.s_items = 0 && not sub.s_dead do
      Condition.wait sub.s_not_empty sub.smu
    done;
    if sub.s_dead && sub.s_items = 0 then begin
      Mutex.unlock sub.smu;
      if sub.s_disconnected then
        ignore (Conn.send conn (Wire.Err "disconnected: slow consumer (policy disconnect)"));
      `Done
    end
    else begin
      let n = min sub.s_items 512 in
      let items = List.init n (fun _ -> Queue.pop sub.sq) in
      (* popped is as good as sent for resume accounting: a tuple that
         dies between here and the socket is exactly what the client's
         token subtraction turns into a gap *)
      List.iter (fun (it, _) -> if Item.is_tuple it then sub.s_sent <- sub.s_sent + 1) items;
      sub.s_items <- sub.s_items - n;
      Condition.broadcast sub.s_not_full;
      let disconnected = sub.s_disconnected in
      Mutex.unlock sub.smu;
      if disconnected then begin
        ignore (Conn.send conn (Wire.Err "disconnected: slow consumer (policy disconnect)"));
        `Done
      end
      else
        match flush_items items with
        | `Sent -> loop ()
        | `Eof ->
            ignore (Conn.send conn Wire.Bye);
            `Done
        | `Dead -> `Lost
    end
  in
  let announced =
    if initial_gap = 0 then true
    else begin
      Metrics.Counter.incr t.c_gaps;
      match Conn.send conn (Wire.Batch (Wire.Batch.make [||] (Some (Item.Gap initial_gap)))) with
      | Ok () -> true
      | Error _ -> false
    end
  in
  match (if announced then loop () else `Lost) with
  | `Done -> remove_sub t sub
  | `Lost -> orphan_sub sub

(* Atomically adopt an orphaned sub for a resuming client; the returned
   [s_sent] against the client's token gives the loss to announce. *)
let claim_sub sub =
  Mutex.lock sub.smu;
  let ok = sub.s_orphaned && not sub.s_dead in
  if ok then sub.s_orphaned <- false;
  let sent = sub.s_sent in
  Mutex.unlock sub.smu;
  if ok then Some sent else None

(* A resume can race the orphaning: the old writer only discovers its
   severed socket at the next send, while the client redials within
   milliseconds. Wait briefly for the orphan instead of refusing a
   resume that is about to become valid. *)
let claim_sub_wait sub =
  let rec go n =
    match claim_sub sub with
    | Some _ as r -> r
    | None when n > 0 ->
        Thread.delay 0.005;
        go (n - 1)
    | None -> None
  in
  go 60

(* Fault injection: abruptly close the socket under every live
   subscriber (of [query] only, when given). The writer threads discover
   the dead sockets on their next send and orphan the subscriptions, so
   a reconnecting client resumes with an exact gap — the same path a
   pulled cable exercises. Returns the number of connections severed. *)
let sever_subscribers ?query t =
  Mutex.lock t.mu;
  let victims =
    Hashtbl.fold
      (fun _ s acc ->
        match s.s_conn with
        | Some c
          when (match query with None -> true | Some q -> s.sub_query = qkey q)
               && not s.s_dead ->
            c :: acc
        | _ -> acc)
      t.subs []
  in
  Mutex.unlock t.mu;
  List.iter Conn.close victims;
  List.length victims

(* --------------------------- connections -------------------------------- *)

let registry_listing t =
  List.map
    (fun node ->
      let kind =
        match Node.kind node with
        | Node.Source -> "source"
        | Node.Lfta -> "lfta"
        | Node.Hfta -> "hfta"
      in
      { Wire.q_name = Node.name node; q_kind = kind; q_schema = Node.schema node })
    (Manager.nodes (E.manager t.engine))

let publish_loop t conn ing =
  let finish () = close_ingest ing in
  let rec loop () =
    match Conn.recv conn with
    | Ok (Wire.Batch b) ->
        let eof = ref false in
        Wire.Batch.iter b (fun item ->
            match item with
            | Item.Eof -> eof := true
            | it -> if not (ingest_push t ing it) then eof := true);
        if !eof then begin
          finish ();
          ignore (Conn.send conn Wire.Bye)
        end
        else loop ()
    | Ok Wire.Bye -> finish ()
    | Ok msg ->
        ignore
          (Conn.send conn (Wire.Err (Printf.sprintf "unexpected %s while publishing" (Wire.msg_label msg))));
        finish ()
    | Error e ->
        (* the publisher vanished: the stream is over, the engine must
           not wait forever on a pull that can never be satisfied *)
        Log.info (fun m -> m "publisher for %s gone: %s" ing.ing_name e);
        finish ()
  in
  loop ()

let control_loop t conn =
  let rec loop () =
    match Conn.recv conn with
    | Ok Wire.List_queries -> (
        match Conn.send conn (Wire.Queries (registry_listing t)) with
        | Ok () -> loop ()
        | Error _ -> ())
    | Ok (Wire.Subscribe name) -> (
        match Manager.find (E.manager t.engine) name with
        | None ->
            ignore (Conn.send conn (Wire.Err (Printf.sprintf "unknown query %s" name)));
            loop ()
        | Some node ->
            let canonical = qkey (Node.name node) in
            let sub = add_sub t canonical in
            (match
               Conn.send conn
                 (Wire.Subscribed
                    { name = Node.name node; schema = Node.schema node; sub_id = sub.sub_id })
             with
            | Ok () ->
                Log.info (fun m -> m "%s subscribed to %s" (Conn.peer conn) (Node.name node));
                writer_loop t conn sub
            | Error _ -> remove_sub t sub))
    | Ok (Wire.Resume { name; sub_id; token }) -> (
        match Manager.find (E.manager t.engine) name with
        | None -> ignore (Conn.send conn (Wire.Err (Printf.sprintf "unknown query %s" name)))
        | Some node -> (
            let existing =
              Mutex.lock t.mu;
              let s = Hashtbl.find_opt t.subs sub_id in
              Mutex.unlock t.mu;
              s
            in
            let subscribed sub =
              Conn.send conn
                (Wire.Subscribed
                   { name = Node.name node; schema = Node.schema node; sub_id = sub.sub_id })
            in
            match existing with
            | Some sub when sub.sub_query = qkey (Node.name node) -> (
                match claim_sub_wait sub with
                | Some sent -> (
                    (* replay from the egress queue; what was popped past
                       the client's token is announced as a leading gap *)
                    Metrics.Counter.incr t.c_resumes;
                    Log.info (fun m ->
                        m "%s resumed %s (sub %d, token %d, sent %d)" (Conn.peer conn)
                          (Node.name node) sub_id token sent);
                    match subscribed sub with
                    | Ok () -> writer_loop t conn sub ~initial_gap:(max 0 (sent - token))
                    | Error _ -> orphan_sub sub)
                | None -> ignore (Conn.send conn (Wire.Err "subscription not resumable")))
            | Some _ | None -> (
                (* nothing to replay from: a fresh subscription whose
                   first frame declares the unknown loss explicitly *)
                let sub = add_sub t (qkey (Node.name node)) in
                Metrics.Counter.incr t.c_resumes;
                match subscribed sub with
                | Ok () -> writer_loop t conn sub ~initial_gap:(-1)
                | Error _ -> remove_sub t sub)))
    | Ok (Wire.Publish name) -> (
        let ing =
          Mutex.lock t.mu;
          let i = Hashtbl.find_opt t.ingests (qkey name) in
          Mutex.unlock t.mu;
          i
        in
        match ing with
        | None ->
            ignore (Conn.send conn (Wire.Err (Printf.sprintf "unknown ingest interface %s" name)));
            loop ()
        | Some ing ->
            let claimed =
              Mutex.lock ing.ing_mu;
              let free = (not ing.ing_busy) && not ing.ing_closed in
              if free then ing.ing_busy <- true;
              Mutex.unlock ing.ing_mu;
              free
            in
            if not claimed then begin
              ignore
                (Conn.send conn
                   (Wire.Err (Printf.sprintf "ingest %s already has a publisher" name)));
              loop ()
            end
            else begin
              match
                Conn.send conn
                  (Wire.Publish_ok { iface = ing.ing_name; schema = ing.ing_schema })
              with
              | Ok () ->
                  Log.info (fun m -> m "%s publishing to %s" (Conn.peer conn) ing.ing_name);
                  publish_loop t conn ing
              | Error _ -> close_ingest ing
            end)
    | Ok Wire.Bye -> ()
    | Ok msg ->
        Metrics.Counter.incr t.c_errors;
        ignore (Conn.send conn (Wire.Err (Printf.sprintf "unexpected %s" (Wire.msg_label msg))))
    | Error e ->
        if t.running then begin
          Metrics.Counter.incr t.c_errors;
          Log.info (fun m -> m "connection %s: %s" (Conn.peer conn) e);
          ignore (Conn.send conn (Wire.Err e))
        end
  in
  loop ()

let handle_conn t fd peer_addr =
  let peer = Addr.to_string (Addr.of_sockaddr peer_addr) in
  let conn = Conn.of_fd ~counters:t.counters ~peer fd in
  let conn_id =
    Mutex.lock t.mu;
    t.next_id <- t.next_id + 1;
    let id = t.next_id in
    Hashtbl.replace t.conns id conn;
    Mutex.unlock t.mu;
    id
  in
  Metrics.Counter.incr t.c_connections;
  Fun.protect
    ~finally:(fun () ->
      Conn.close conn;
      Mutex.lock t.mu;
      Hashtbl.remove t.conns conn_id;
      Mutex.unlock t.mu)
    (fun () ->
      match Conn.recv conn with
      | Ok (Wire.Hello { version; peer = who }) ->
          if version <> Wire.protocol_version then
            ignore
              (Conn.send conn
                 (Wire.Err
                    (Printf.sprintf "protocol version %d unsupported (want %d)" version
                       Wire.protocol_version)))
          else begin
            Log.debug (fun m -> m "hello from %s (%s)" who peer);
            match
              Conn.send conn (Wire.Hello { version = Wire.protocol_version; peer = t.peer_name })
            with
            | Ok () -> control_loop t conn
            | Error _ -> ()
          end
      | Ok msg ->
          Metrics.Counter.incr t.c_errors;
          ignore
            (Conn.send conn (Wire.Err (Printf.sprintf "expected hello, got %s" (Wire.msg_label msg))))
      | Error e ->
          Metrics.Counter.incr t.c_errors;
          Log.info (fun m -> m "handshake with %s failed: %s" peer e))

let accept_loop t lfd addr =
  let rec loop () =
    match Unix.accept lfd with
    | fd, _ when not t.running ->
        (* the wake-up connection from [stop], or a last-instant client *)
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, peer_addr ->
        let th =
          Thread.create
            (fun () ->
              try handle_conn t fd peer_addr
              with exn ->
                Metrics.Counter.incr t.c_errors;
                Log.warn (fun m -> m "connection handler died: %s" (Printexc.to_string exn)))
            ()
        in
        Mutex.lock t.mu;
        t.threads <- th :: t.threads;
        Mutex.unlock t.mu;
        loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* listener closed: shutdown path *)
        ()
    | exception Unix.Unix_error (e, _, _) ->
        if t.running then begin
          Log.warn (fun m ->
              m "accept on %s: %s" (Addr.to_string addr) (Unix.error_message e));
          Thread.delay 0.01;
          loop ()
        end
  in
  loop ()

(* Liveness frames on the control/data socket: a subscriber whose query
   is quiet still sees traffic every [iv] seconds, so a client-side read
   deadline can tell "idle stream" from "dead server". Sent from one
   thread for all subscribers; a send error here is left for the
   sub's own writer to discover and orphan on. Sleep in short slices so
   [stop] never waits a full interval for the join. *)
let heartbeat_loop t iv =
  let rec nap remaining =
    if t.running && remaining > 0.0 then begin
      let d = Float.min 0.05 remaining in
      Thread.delay d;
      nap (remaining -. d)
    end
  in
  while t.running do
    nap iv;
    if t.running then begin
      Mutex.lock t.mu;
      let conns =
        Hashtbl.fold (fun _ s acc -> match s.s_conn with Some c -> c :: acc | None -> acc)
          t.subs []
      in
      Mutex.unlock t.mu;
      List.iter
        (fun conn ->
          match Conn.send conn Wire.Heartbeat with
          | Ok () -> Metrics.Counter.incr t.c_heartbeats
          | Error _ -> ())
        conns
    end
  done

let start_heartbeat t =
  match t.heartbeat with
  | None -> ()
  | Some iv when iv > 0.0 ->
      Mutex.lock t.mu;
      let start = (not t.hb_started) && t.running in
      if start then t.hb_started <- true;
      Mutex.unlock t.mu;
      if start then begin
        let th = Thread.create (fun () -> heartbeat_loop t iv) () in
        Mutex.lock t.mu;
        t.threads <- th :: t.threads;
        Mutex.unlock t.mu
      end
  | Some _ -> ()

let listen t addr =
  attach_queries t;
  start_heartbeat t;
  match Addr.to_sockaddr addr with
  | Error _ as e -> e
  | Ok sockaddr -> (
      let domain = Unix.domain_of_sockaddr sockaddr in
      match
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (try
           if domain <> Unix.PF_UNIX then Unix.setsockopt fd Unix.SO_REUSEADDR true;
           (match sockaddr with
           | Unix.ADDR_UNIX path when Sys.file_exists path ->
               (* A leftover socket file from a dead server should be
                  reclaimed; one with a live listener behind it must not
                  be stolen. Only a connect probe can tell the two
                  apart. *)
               let live =
                 match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
                 | exception Unix.Unix_error _ -> false
                 | probe -> (
                     let alive =
                       match Unix.connect probe sockaddr with
                       | () -> true
                       | exception Unix.Unix_error _ -> false
                     in
                     (try Unix.close probe with Unix.Unix_error _ -> ());
                     alive)
               in
               if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
               else ( try Unix.unlink path with Unix.Unix_error _ -> ())
           | _ -> ());
           Unix.bind fd sockaddr;
           Unix.listen fd 64
         with exn ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise exn);
        fd
      with
      | fd ->
          let bound = Addr.of_sockaddr (Unix.getsockname fd) in
          let bound = match (bound, addr) with
            | Addr.Tcp (_, port), Addr.Tcp (host, _) -> Addr.Tcp (host, port)
            | b, _ -> b
          in
          Mutex.lock t.mu;
          t.listeners <- (fd, bound) :: t.listeners;
          Mutex.unlock t.mu;
          let th = Thread.create (fun () -> accept_loop t fd bound) () in
          Mutex.lock t.mu;
          t.threads <- th :: t.threads;
          Mutex.unlock t.mu;
          Log.info (fun m -> m "listening on %s" (Addr.to_string bound));
          Ok bound
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot listen on %s: %s" (Addr.to_string addr)
               (Unix.error_message e)))

let addresses t =
  Mutex.lock t.mu;
  let l = List.rev_map snd t.listeners in
  Mutex.unlock t.mu;
  l

let subscriber_count t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.subs in
  Mutex.unlock t.mu;
  n

let attached_count t =
  Mutex.lock t.mu;
  let n = Hashtbl.fold (fun _ s acc -> if s.s_orphaned then acc else acc + 1) t.subs 0 in
  Mutex.unlock t.mu;
  n

let drain ?(timeout = 10.0) t =
  let deadline = Gigascope_obs.Clock.now_ns () +. (timeout *. 1e9) in
  let rec wait () =
    if attached_count t = 0 then true
    else if Gigascope_obs.Clock.now_ns () > deadline then false
    else begin
      Thread.delay 0.005;
      wait ()
    end
  in
  wait ()

let stop t =
  Mutex.lock t.mu;
  let was_running = t.running in
  t.running <- false;
  let listeners = t.listeners in
  t.listeners <- [];
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  let subs = Hashtbl.fold (fun _ s acc -> s :: acc) t.subs [] in
  let ingests = Hashtbl.fold (fun _ i acc -> i :: acc) t.ingests [] in
  Mutex.unlock t.mu;
  if was_running then begin
    (* Closing a listening fd does not wake a thread blocked in accept(2);
       shutdown plus a throwaway self-connection does, whatever the
       transport. The accept loop sees [running = false] and exits. *)
    List.iter
      (fun (fd, addr) ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        (match Addr.to_sockaddr addr with
        | Ok sa -> (
            try
              let wfd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
              (try Unix.connect wfd sa with Unix.Unix_error _ -> ());
              try Unix.close wfd with Unix.Unix_error _ -> ()
            with Unix.Unix_error _ -> ())
        | Error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match addr with
        | Addr.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | Addr.Tcp _ -> ())
      listeners;
    List.iter kill_sub subs;
    List.iter close_ingest ingests;
    List.iter Conn.close conns;
    let rec join_all () =
      Mutex.lock t.mu;
      let ths = t.threads in
      t.threads <- [];
      Mutex.unlock t.mu;
      match ths with
      | [] -> ()
      | ths ->
          List.iter Thread.join ths;
          join_all ()
    in
    join_all ();
    Log.info (fun m -> m "server stopped")
  end
