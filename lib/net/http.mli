(** A minimal HTTP/1.0 observability endpoint.

    Serves GET requests on the systhread pool next to the wire-protocol
    listeners: one accept loop per bound address, one short-lived thread
    per request, [Connection: close] semantics. This is deliberately not
    a web server — it exists so a Prometheus scraper, [curl], or
    [gsq top] can read the metrics registry of a live [gsq serve]
    without speaking the binary protocol.

    The handler maps a request path to [(content-type, body)]; [None]
    renders a 404. Request heads are capped at 8 KiB and anything but
    GET gets a 405 — the observability port is attack surface like any
    other listener. *)

type handler = path:string -> (string * string) option
(** Called once per GET request with the decoded path (query string
    stripped). Runs on the request's own thread, so it may snapshot the
    metrics registry at will but must not block indefinitely. *)

type t

val create : handler:handler -> t

val listen : t -> Addr.t -> (Addr.t, string) result
(** Bind and serve. Returns the bound address (reporting the real port
    when asked for port 0). May be called for several addresses. A
    stale Unix-socket path is unlinked unconditionally (the endpoint is
    read-only; there is nothing to protect from a second server). *)

val stop : t -> unit
(** Close listeners, wake the accept loops and join every thread.
    Idempotent. *)
